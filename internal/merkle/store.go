package merkle

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Storage errors.
var (
	// ErrBadSnapshot is returned when a persisted tree fails validation.
	ErrBadSnapshot = errors.New("merkle: malformed tree snapshot")
)

// snapshotMagic identifies the on-disk format; bump the version byte on
// incompatible changes.
var snapshotMagic = []byte{'u', 'g', 'm', 't', 0x01}

// WriteSnapshot persists the partial tree's stored node set (the top H-ℓ
// levels of Section 3.3) so a participant can keep commitments across
// restarts without recomputing f over the whole domain. The paper sizes
// this store explicitly — "using 4G disk space provides a feasible solution
// both storage-wise and computation-wise" for |D| = 2^40 — and this is that
// store. The leaf function is not persisted; the caller re-binds it on
// load.
func (p *PartialTree) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return fmt.Errorf("merkle: write snapshot header: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := writeUvarint(uint64(p.n)); err != nil {
		return fmt.Errorf("merkle: write snapshot n: %w", err)
	}
	if err := writeUvarint(uint64(p.ell)); err != nil {
		return fmt.Errorf("merkle: write snapshot ℓ: %w", err)
	}
	if err := writeUvarint(uint64(len(p.top))); err != nil {
		return fmt.Errorf("merkle: write snapshot node count: %w", err)
	}
	// top[0] is unused in the heap layout; store it as empty.
	for i, node := range p.top {
		if err := writeUvarint(uint64(len(node))); err != nil {
			return fmt.Errorf("merkle: write node %d length: %w", i, err)
		}
		if _, err := bw.Write(node); err != nil {
			return fmt.Errorf("merkle: write node %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores a partial tree persisted by WriteSnapshot. leafAt
// must be the same deterministic leaf function used to build the original
// tree: proofs rebuild subtrees from it, and a mismatch surfaces as root
// inconsistencies at verification time (it cannot be detected here without
// recomputing the domain, which is the very cost the snapshot avoids).
func ReadSnapshot(r io.Reader, leafAt func(i int) []byte, opts ...Option) (*PartialTree, error) {
	if leafAt == nil {
		return nil, fmt.Errorf("%w: nil leafAt", ErrNilLeaf)
	}
	br := bufio.NewReader(r)
	header := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if !bytes.Equal(header, snapshotMagic) {
		return nil, fmt.Errorf("%w: bad magic %x", ErrBadSnapshot, header)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: n: %v", ErrBadSnapshot, err)
	}
	ell, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: ℓ: %v", ErrBadSnapshot, err)
	}
	nodeCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: node count: %v", ErrBadSnapshot, err)
	}
	if n < 1 || n > 1<<40 {
		return nil, fmt.Errorf("%w: leaf count %d", ErrBadSnapshot, n)
	}
	capacity := nextPow2(int(n))
	height := log2(capacity)
	if int(ell) > height {
		return nil, fmt.Errorf("%w: ℓ=%d exceeds height %d", ErrBadSnapshot, ell, height)
	}
	blockSize := 1 << ell
	wantNodes := uint64(2 * (capacity / blockSize))
	if nodeCount != wantNodes {
		return nil, fmt.Errorf("%w: %d nodes, want %d", ErrBadSnapshot, nodeCount, wantNodes)
	}

	top := make([][]byte, nodeCount)
	for i := range top {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d length: %v", ErrBadSnapshot, i, err)
		}
		const maxNodeBytes = 1 << 20
		if size > maxNodeBytes {
			return nil, fmt.Errorf("%w: node %d claims %d bytes", ErrBadSnapshot, i, size)
		}
		node := make([]byte, size)
		if size > 0 {
			if _, err := io.ReadFull(br, node); err != nil {
				return nil, fmt.Errorf("%w: node %d: %v", ErrBadSnapshot, i, err)
			}
		}
		top[i] = node
	}
	// Internal nodes of the top tree must be digests; block roots (the
	// bottom stored row) may be raw leaf values at ℓ=0, including empty
	// ones. Node 0 is the unused heap slot.
	for i := 1; i < len(top)/2; i++ {
		if len(top[i]) == 0 {
			return nil, fmt.Errorf("%w: empty internal node %d", ErrBadSnapshot, i)
		}
	}

	hs := newHashers(buildOptions(opts))
	p := &PartialTree{
		n:         int(n),
		cap:       capacity,
		ell:       int(ell),
		blockSize: blockSize,
		top:       top,
		leafAt:    leafAt,
		hs:        hs,
		scratch:   make([][]byte, 2*blockSize),
	}
	// Validate internal consistency of the persisted top levels: every
	// stored internal node must hash its children. One reusable digest
	// serves the whole sweep — each value is compared before the next
	// overwrite.
	nh := hs.node()
	var scratch []byte
	if hs.fixedLen > 0 {
		scratch = make([]byte, 0, hs.fixedLen)
	}
	numBlocks := len(top) / 2
	for i := numBlocks - 1; i >= 1; i-- {
		want := nh.combineInto(scratch, top[2*i], top[2*i+1])
		if !bytes.Equal(top[i], want) {
			return nil, fmt.Errorf("%w: node %d does not hash its children", ErrBadSnapshot, i)
		}
	}
	return p, nil
}

// SaveSnapshotFile persists the tree to path (atomically via a temp file).
func (p *PartialTree) SaveSnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("merkle: create snapshot: %w", err)
	}
	if err := p.WriteSnapshot(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("merkle: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("merkle: commit snapshot: %w", err)
	}
	return nil
}

// LoadSnapshotFile restores a tree persisted by SaveSnapshotFile.
func LoadSnapshotFile(path string, leafAt func(i int) []byte, opts ...Option) (*PartialTree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("merkle: open snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f, leafAt, opts...)
}
