package merkle

import (
	"errors"
	"fmt"
)

// Streaming errors.
var (
	// ErrTooManyLeaves is returned when Add is called more than n times.
	ErrTooManyLeaves = errors.New("merkle: more leaves added than declared")
	// ErrIncomplete is returned when Root is requested before all n leaves
	// have been added.
	ErrIncomplete = errors.New("merkle: not all declared leaves were added")
)

// streamShardBuffer is the per-shard channel depth of a sharded builder:
// deep enough to keep workers busy while the producer runs ahead, shallow
// enough to bound buffered leaf references.
const streamShardBuffer = 256

// StreamBuilder computes the Merkle root of an n-leaf tree in a single
// left-to-right pass using O(log n) memory. Participants with domains far
// larger than RAM (the paper discusses |D| = 2^40) use it to produce the
// commitment without materializing the tree; proofs are then served by a
// PartialTree that rebuilds subtrees on demand (Section 3.3).
//
// With the default fixed-size hash the builder is allocation-free in steady
// state: every internal digest is written into one of two ping-pong rows per
// level of a small arena allocated up front. Leaf values are retained by
// reference until absorbed into a digest (at the latest, the next Add), so
// callers must not mutate a value after passing it to Add.
type StreamBuilder struct {
	n     int
	added int
	cap   int
	depth int
	hs    hashers
	root  []byte

	// Serial fast path (fixed-size digests). pending[L] holds the root of a
	// completed height-L subtree awaiting its right sibling; slot occupancy
	// mirrors the binary representation of added (bit L set <=> pending[L]
	// occupied), exactly the classic binary-counter formulation of the
	// O(log n) stack. Digests for levels >= 1 live in two alternating arena
	// rows per level, so a merge cascade never writes a row that still holds
	// a live pending digest.
	pending [][]byte
	flip    []uint8
	arena   []byte
	nh      *nodeHasher

	// Allocating fallback for variable-size hashers: pending subtree roots
	// in strictly descending height order; levels[i] is the height of the
	// subtree rooted at stack[i].
	stack  [][]byte
	levels []int

	// Sharded mode (WithParallelism): the padded leaf range is split into
	// aligned power-of-two spans, each consumed by a worker running its own
	// serial builder; Root merges the shard frontiers. closed records that
	// the shard inputs have been closed, so a retried finalization can never
	// close a channel twice. shards[i] owns absolute span firstSpan+i: a
	// builder restored mid-stream spawns workers only for the spans at or
	// after its restore point and carries the already-merged spans as the
	// prefix frontier.
	shards    []*streamShard
	span      int
	firstSpan int
	prefix    []FrontierEntry
	padTable  [][]byte
	closed    bool

	// win tracks per-window roots when WithWindowTracking is enabled, so
	// WindowRoot can serve sliding-window commitments without the leaves.
	win *windowTracker
}

// NewStreamBuilder prepares a builder for exactly n leaves.
//
// WithParallelism(p) shards the stream: the padded leaf range is split into
// nextPow2(p) aligned power-of-two subtree spans, each fed over a buffered
// channel to a worker goroutine running the serial O(log n) builder on its
// span, and Root merges the shard roots. The root is bit-identical to the
// serial builder's. Unlike Build there is no NumCPU clamp or minimum size —
// sharding is an explicit per-builder opt-in — but a sharded builder owns
// worker goroutines: callers must finish the stream and call Root to release
// them. Leaf values are absorbed asynchronously in sharded mode, so a caller
// must never mutate a value after Add, even on the next iteration.
func NewStreamBuilder(n int, opts ...Option) (*StreamBuilder, error) {
	if n <= 0 {
		return nil, ErrEmptyTree
	}
	o := buildOptions(opts)
	hs := newHashers(o)
	capacity := nextPow2(n)
	var b *StreamBuilder
	if shards := streamShards(o.parallelism, capacity); shards > 1 {
		b = &StreamBuilder{n: n, cap: capacity, depth: log2(capacity), hs: hs}
		b.startShards(shards, 0, nil, 0)
	} else {
		b = newSerialStream(n, hs)
	}
	if o.window > 0 {
		win, err := newWindowTracker(o.window, o.windowKeep, hs)
		if err != nil {
			return nil, err
		}
		b.win = win
	}
	return b, nil
}

// newSerialStream builds the serial engine (fast pending-slot path for
// fixed-size digests, allocating stack fallback otherwise).
func newSerialStream(n int, hs hashers) *StreamBuilder {
	capacity := nextPow2(n)
	depth := log2(capacity)
	b := &StreamBuilder{n: n, cap: capacity, depth: depth, hs: hs}
	if hs.fixedLen > 0 {
		b.pending = make([][]byte, depth+1)
		b.flip = make([]uint8, depth+1)
		if depth > 0 {
			b.arena = make([]byte, 2*depth*hs.fixedLen)
		}
		b.nh = hs.node()
	} else {
		b.stack = make([][]byte, 0, depth+1)
		b.levels = make([]int, 0, depth+1)
	}
	return b
}

// streamShards resolves the shard count for a sharded stream build: the
// requested parallelism rounded up to a power of two (spans must be aligned
// subtrees), clamped so every shard owns at least two leaves.
func streamShards(requested, capacity int) int {
	if requested <= 1 {
		return 1
	}
	s := nextPow2(requested)
	if s > capacity/2 {
		s = capacity / 2
	}
	if s < 2 {
		return 1
	}
	return s
}

// Add appends the next leaf value (leaves must arrive in index order).
func (b *StreamBuilder) Add(value []byte) error {
	if value == nil {
		return fmt.Errorf("%w: index %d", ErrNilLeaf, b.added)
	}
	if b.added >= b.n {
		return ErrTooManyLeaves
	}
	if b.win != nil {
		b.win.add(value)
	}
	switch {
	case b.shards != nil:
		// Leaves arrive in index order, so shards fill strictly left to
		// right; validation above means shard Adds cannot fail.
		b.shards[b.added/b.span-b.firstSpan].ch <- value
	case b.pending != nil:
		b.pushFast(value)
	default:
		b.push(value, 0)
	}
	b.added++
	return nil
}

// Added reports how many leaves have been consumed so far.
func (b *StreamBuilder) Added() int { return b.added }

// Root finalizes the tree, padding to the next power of two, and returns the
// commitment Φ(R). It may only be called after all n leaves have been added;
// repeated calls return the same root.
func (b *StreamBuilder) Root() ([]byte, error) {
	if b.added < b.n {
		return nil, fmt.Errorf("%w: have %d of %d", ErrIncomplete, b.added, b.n)
	}
	if b.root == nil {
		root, err := b.finalize()
		if err != nil {
			return nil, err
		}
		b.root = root
	}
	return cloneBytes(b.root), nil
}

func (b *StreamBuilder) finalize() ([]byte, error) {
	switch {
	case b.shards != nil:
		return b.finalizeShards()
	case b.pending != nil:
		return b.finalizeFast(), nil
	default:
		for i := b.n; i < b.cap; i++ {
			b.push(b.hs.pad, 0)
		}
		if len(b.stack) != 1 {
			// Unreachable for a complete tree; guards internal invariants.
			return nil, fmt.Errorf("merkle: internal error: %d pending subtrees after padding", len(b.stack))
		}
		return b.stack[0], nil
	}
}

// pushFast is the allocation-free twin of push. The trailing 1-bits of added
// say exactly which levels already hold a pending left sibling, so the new
// leaf merges upward once per trailing 1-bit and parks at the first 0-bit.
func (b *StreamBuilder) pushFast(value []byte) {
	cur := value
	level := 0
	for b.added>>uint(level)&1 == 1 {
		cur = b.nh.combineInto(b.levelRow(level+1), b.pending[level], cur)
		b.pending[level] = nil
		level++
	}
	b.pending[level] = cur
}

// levelRow hands out the next of level's two alternating arena rows. A
// level-L digest is produced once per 2^L leaves and consumed one production
// later at most, so at any moment a level has at most one live digest (the
// pending one) plus the one being written — and they always land in
// different rows. combineInto additionally absorbs its inputs before writing
// dst, so even the cascade's transient values never conflict.
func (b *StreamBuilder) levelRow(level int) []byte {
	f := b.flip[level]
	b.flip[level] = 1 - f
	base := (2*(level-1) + int(f)) * b.hs.fixedLen
	return b.arena[base : base : base+b.hs.fixedLen]
}

// finalizeFast folds the pending slots with all-pad subtree roots: the root
// of a height-L subtree whose leaves are all pads is padAt(L) from
// hashers.padTable, so finishing costs O(depth) hashes instead of cap-n pad
// pushes. The result is byte-identical to pushing each pad leaf (induction
// on L: pushing 2^L pads yields exactly padAt(L)).
func (b *StreamBuilder) finalizeFast() []byte {
	if b.cap == 1 {
		return b.pending[0]
	}
	pads := b.hs.padTable(b.depth - 1)
	// cur is the root of the padded subtree covering the tail of the level,
	// or nil while the tail is still all-pad (absorbed by higher padAt).
	var cur []byte
	for level := 0; level < b.depth; level++ {
		have := b.added>>uint(level)&1 == 1
		switch {
		case have && cur != nil:
			cur = b.hs.combine(b.pending[level], cur)
		case have:
			cur = b.hs.combine(b.pending[level], pads[level])
		case cur != nil:
			cur = b.hs.combine(cur, pads[level])
		}
	}
	if cur == nil {
		// n is a power of two: the lone pending slot at the top is the root.
		cur = b.pending[b.depth]
	}
	return cur
}

// streamShard is one worker of a sharded builder: a serial engine over the
// shard's real leaves, fed over ch, whose root is lifted to span height.
// flush lets Snapshot quiesce the worker: the worker drains every leaf that
// was sent before the request (the producer and the snapshotter are the same
// goroutine, so those sends have all completed) and replies with its engine's
// frontier.
type streamShard struct {
	ch    chan []byte
	flush chan chan shardState
	done  chan struct{}
	eng   *StreamBuilder
	root  []byte
	err   error
}

// shardState is a quiesced shard engine's position, handed back over flush.
type shardState struct {
	added    int
	frontier []FrontierEntry
	err      error
}

// startShards switches the builder into sharded mode with the given
// power-of-two shard count. Shards that contain no real leaf get no worker;
// their span roots are all-pad digests taken from the pad table. A restore
// passes firstSpan > 0 plus the partially-filled first span's frontier;
// spans before firstSpan are carried by the builder's prefix frontier and
// get no worker.
func (b *StreamBuilder) startShards(shards, firstSpan int, partial []FrontierEntry, partialAdded int) {
	b.span = b.cap / shards
	spanDepth := log2(b.span)
	b.padTable = b.hs.padTable(spanDepth)
	b.firstSpan = firstSpan
	live := (b.n + b.span - 1) / b.span
	if live < firstSpan {
		live = firstSpan
	}
	b.shards = make([]*streamShard, live-firstSpan)
	for i := range b.shards {
		s := firstSpan + i
		count := b.n - s*b.span
		if count > b.span {
			count = b.span
		}
		eng := newSerialStream(count, b.hs)
		if i == 0 && partialAdded > 0 {
			eng.restoreFrontier(partialAdded, partial)
		}
		sh := &streamShard{
			ch:    make(chan []byte, streamShardBuffer),
			flush: make(chan chan shardState),
			done:  make(chan struct{}),
			eng:   eng,
		}
		b.shards[i] = sh
		go sh.run(b.padTable, spanDepth)
	}
}

// run consumes the shard's leaves and computes its span root. A shard whose
// real leaves fill only a prefix of its span is topped up with all-pad right
// siblings: combine(root, padAt(h)) for each level between the serial
// engine's own height and the span height — byte-identical to streaming the
// pad leaves individually.
func (sh *streamShard) run(pads [][]byte, spanDepth int) {
	defer close(sh.done)
	for {
		select {
		case v, ok := <-sh.ch:
			if !ok {
				sh.finish(pads, spanDepth)
				return
			}
			if sh.err == nil {
				sh.err = sh.eng.Add(v)
			}
		case req := <-sh.flush:
			// Drain the buffered backlog first: every leaf destined for this
			// shard was sent before the flush request, so a non-blocking
			// sweep observes all of them.
			for drained := false; !drained; {
				select {
				case v, ok := <-sh.ch:
					if !ok {
						// Finalize raced the snapshot; disallowed by the
						// builder (Snapshot errors after Root), so just stop.
						sh.finish(pads, spanDepth)
						req <- shardState{err: ErrFinalized}
						return
					}
					if sh.err == nil {
						sh.err = sh.eng.Add(v)
					}
				default:
					drained = true
				}
			}
			req <- shardState{
				added:    sh.eng.added,
				frontier: sh.eng.frontier(),
				err:      sh.err,
			}
		}
	}
}

func (sh *streamShard) finish(pads [][]byte, spanDepth int) {
	if sh.err != nil {
		return
	}
	root, err := sh.eng.Root()
	if err != nil {
		sh.err = err
		return
	}
	for h := sh.eng.depth; h < spanDepth; h++ {
		root = sh.eng.hs.combine(root, pads[h])
	}
	sh.root = root
}

// finalizeShards closes the shard inputs and merges the prefix frontier (a
// restored builder's already-merged spans), the live span roots, and the
// all-pad span roots into the commitment. The merge is the binary-counter
// push at span height — for a fresh builder this performs exactly the
// pairwise bottom-up combines of the full tree, so roots stay byte-identical
// to the serial builder's.
func (b *StreamBuilder) finalizeShards() ([]byte, error) {
	if !b.closed {
		b.closed = true
		for _, sh := range b.shards {
			close(sh.ch)
		}
	}
	spanDepth := log2(b.span)
	var stack [][]byte
	var levels []int
	push := func(v []byte, level int) {
		stack = append(stack, v)
		levels = append(levels, level)
		for len(stack) >= 2 && levels[len(levels)-1] == levels[len(levels)-2] {
			top := len(stack) - 1
			merged := b.hs.combine(stack[top-1], stack[top])
			lvl := levels[top] + 1
			stack = append(stack[:top-1], merged)
			levels = append(levels[:top-1], lvl)
		}
	}
	for _, e := range b.prefix {
		push(e.Digest, e.Level)
	}
	totalSpans := b.cap / b.span
	for s := b.firstSpan; s < totalSpans; s++ {
		root := b.padTable[spanDepth]
		if i := s - b.firstSpan; i < len(b.shards) {
			sh := b.shards[i]
			<-sh.done
			if sh.err != nil {
				// Unreachable: Add validates before routing to a shard.
				return nil, fmt.Errorf("merkle: internal error: shard %d: %w", s, sh.err)
			}
			root = sh.root
		}
		push(root, spanDepth)
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("merkle: internal error: %d pending subtrees after shard merge", len(stack))
	}
	return stack[0], nil
}

// push places a subtree root of the given height on the stack and merges
// equal-height neighbours until heights strictly descend again.
func (b *StreamBuilder) push(value []byte, level int) {
	b.stack = append(b.stack, value)
	b.levels = append(b.levels, level)
	for len(b.stack) >= 2 && b.levels[len(b.levels)-1] == b.levels[len(b.levels)-2] {
		top := len(b.stack) - 1
		merged := b.hs.combine(b.stack[top-1], b.stack[top])
		lvl := b.levels[top] + 1
		b.stack = append(b.stack[:top-1], merged)
		b.levels = append(b.levels[:top-1], lvl)
	}
}
