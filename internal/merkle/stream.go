package merkle

import (
	"errors"
	"fmt"
)

// Streaming errors.
var (
	// ErrTooManyLeaves is returned when Add is called more than n times.
	ErrTooManyLeaves = errors.New("merkle: more leaves added than declared")
	// ErrIncomplete is returned when Root is requested before all n leaves
	// have been added.
	ErrIncomplete = errors.New("merkle: not all declared leaves were added")
)

// StreamBuilder computes the Merkle root of an n-leaf tree in a single
// left-to-right pass using O(log n) memory. Participants with domains far
// larger than RAM (the paper discusses |D| = 2^40) use it to produce the
// commitment without materializing the tree; proofs are then served by a
// PartialTree that rebuilds subtrees on demand (Section 3.3).
type StreamBuilder struct {
	n     int
	added int
	cap   int
	// stack holds pending subtree roots in strictly descending height
	// order; levels[i] is the height of the subtree rooted at stack[i].
	// Adjacent completed subtrees of equal height merge eagerly, so the
	// stack never exceeds log2(cap)+1 entries.
	stack  [][]byte
	levels []int
	hs     hashers
	root   []byte
}

// NewStreamBuilder prepares a builder for exactly n leaves.
func NewStreamBuilder(n int, opts ...Option) (*StreamBuilder, error) {
	if n <= 0 {
		return nil, ErrEmptyTree
	}
	capacity := nextPow2(n)
	depth := log2(capacity)
	return &StreamBuilder{
		n:      n,
		cap:    capacity,
		stack:  make([][]byte, 0, depth+1),
		levels: make([]int, 0, depth+1),
		hs:     newHashers(buildOptions(opts)),
	}, nil
}

// Add appends the next leaf value (leaves must arrive in index order).
func (b *StreamBuilder) Add(value []byte) error {
	if value == nil {
		return fmt.Errorf("%w: index %d", ErrNilLeaf, b.added)
	}
	if b.added >= b.n {
		return ErrTooManyLeaves
	}
	b.push(value, 0)
	b.added++
	return nil
}

// Added reports how many leaves have been consumed so far.
func (b *StreamBuilder) Added() int { return b.added }

// Root finalizes the tree, padding to the next power of two, and returns the
// commitment Φ(R). It may only be called after all n leaves have been added;
// repeated calls return the same root.
func (b *StreamBuilder) Root() ([]byte, error) {
	if b.added < b.n {
		return nil, fmt.Errorf("%w: have %d of %d", ErrIncomplete, b.added, b.n)
	}
	if b.root == nil {
		for i := b.n; i < b.cap; i++ {
			b.push(b.hs.pad, 0)
		}
		if len(b.stack) != 1 {
			// Unreachable for a complete tree; guards internal invariants.
			return nil, fmt.Errorf("merkle: internal error: %d pending subtrees after padding", len(b.stack))
		}
		b.root = b.stack[0]
	}
	out := make([]byte, len(b.root))
	copy(out, b.root)
	return out, nil
}

// push places a subtree root of the given height on the stack and merges
// equal-height neighbours until heights strictly descend again.
func (b *StreamBuilder) push(value []byte, level int) {
	b.stack = append(b.stack, value)
	b.levels = append(b.levels, level)
	for len(b.stack) >= 2 && b.levels[len(b.levels)-1] == b.levels[len(b.levels)-2] {
		top := len(b.stack) - 1
		merged := b.hs.combine(b.stack[top-1], b.stack[top])
		lvl := b.levels[top] + 1
		b.stack = append(b.stack[:top-1], merged)
		b.levels = append(b.levels[:top-1], lvl)
	}
}
