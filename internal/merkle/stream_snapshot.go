package merkle

// Checkpointable streaming: a StreamBuilder's whole position is its leaf
// count plus the O(log n) frontier of pending subtree roots (the binary-
// counter stack), so a rolling commitment over a weeks-long stream can be
// persisted as a few hundred bytes and resumed after a process restart.
// Snapshot canonicalizes every engine mode — the fast pending-slot path,
// the allocating stack fallback, and the sharded worker pool — into the
// same frontier form, and RestoreStreamBuilder can rebuild any mode from
// it, so a stream may even be snapshotted serial and resumed sharded.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot/restore errors.
var (
	// ErrFinalized is returned when Snapshot is called after Root: a
	// finalized builder has folded its frontier away.
	ErrFinalized = errors.New("merkle: stream builder already finalized")
	// ErrBadStreamSnapshot is returned for a snapshot whose frontier is
	// inconsistent with its declared position.
	ErrBadStreamSnapshot = errors.New("merkle: malformed stream snapshot")
	// ErrBadWindow is returned for an invalid WithWindowTracking size.
	ErrBadWindow = errors.New("merkle: window size must be a power of two >= 1")
	// ErrNoWindowTracking is returned by WindowRoot when the builder was
	// built without WithWindowTracking.
	ErrNoWindowTracking = errors.New("merkle: window tracking not enabled")
	// ErrWindowUnavailable is returned by WindowRoot for a range that is
	// unaligned, beyond the stream position, or already evicted from the
	// retained ring.
	ErrWindowUnavailable = errors.New("merkle: window root unavailable")
)

// FrontierEntry is one pending subtree root of a streaming build: the root
// of a completed height-Level subtree awaiting its right sibling. Entries
// are ordered by strictly descending level; level-0 entries hold a raw leaf
// value rather than a digest.
type FrontierEntry struct {
	Level  int
	Digest []byte
}

// StreamSnapshot is a StreamBuilder's complete resumable position: the
// declared and consumed leaf counts plus the canonical frontier. The set of
// frontier levels always equals the set bits of Added. Window holds the
// rolling-window tracker state when WithWindowTracking is enabled.
type StreamSnapshot struct {
	N        int
	Added    int
	Frontier []FrontierEntry
	Window   *WindowSnapshot
}

// WindowSnapshot is the rolling-window tracker's position: the retained
// finalized window roots (Base is the index of the first one) and the
// frontier of the in-progress window.
type WindowSnapshot struct {
	W       int
	Keep    int
	Base    int
	Roots   [][]byte
	Partial []FrontierEntry
}

// frontier extracts a serial engine's pending subtree roots in descending
// level order, cloning every digest so the snapshot is detached from the
// builder's arena rows.
func (b *StreamBuilder) frontier() []FrontierEntry {
	var out []FrontierEntry
	if b.pending != nil {
		for level := b.depth; level >= 0; level-- {
			if b.pending[level] != nil {
				out = append(out, FrontierEntry{Level: level, Digest: cloneBytes(b.pending[level])})
			}
		}
		return out
	}
	for i := range b.stack {
		out = append(out, FrontierEntry{Level: b.levels[i], Digest: cloneBytes(b.stack[i])})
	}
	return out
}

// restoreFrontier seeds a fresh serial engine with a previously snapshotted
// position. Entries are cloned onto the heap: the restored digests are read
// (never written) by later merges, so they need no arena row.
func (b *StreamBuilder) restoreFrontier(added int, entries []FrontierEntry) {
	b.added = added
	if b.pending != nil {
		for _, e := range entries {
			b.pending[e.Level] = cloneBytes(e.Digest)
		}
		return
	}
	for _, e := range entries {
		b.stack = append(b.stack, cloneBytes(e.Digest))
		b.levels = append(b.levels, e.Level)
	}
}

// Snapshot captures the builder's position as a canonical frontier that
// RestoreStreamBuilder can resume from, in any engine mode. A sharded
// builder quiesces its workers first (each drains its buffered leaves and
// reports its engine frontier), then merges the completed span roots with
// the binary counter so the result is byte-identical to the serial
// builder's frontier at the same position. Snapshot is non-destructive: the
// builder keeps streaming afterwards.
func (b *StreamBuilder) Snapshot() (*StreamSnapshot, error) {
	if b.root != nil || b.closed {
		return nil, ErrFinalized
	}
	snap := &StreamSnapshot{N: b.n, Added: b.added}
	switch {
	case b.shards != nil:
		frontier, err := b.shardedFrontier()
		if err != nil {
			return nil, err
		}
		snap.Frontier = frontier
	default:
		snap.Frontier = b.frontier()
	}
	if b.win != nil {
		snap.Window = b.win.snapshot()
	}
	return snap, nil
}

// shardedFrontier canonicalizes a sharded builder's position: the prefix
// frontier (spans merged before a restore) and the completed shards' span
// roots feed a binary-counter merge at span height, and the in-progress
// shard's sub-span frontier rides below it untouched.
func (b *StreamBuilder) shardedFrontier() ([]FrontierEntry, error) {
	spanDepth := log2(b.span)
	cur := b.added / b.span // absolute index of the first incomplete span
	var stack [][]byte
	var levels []int
	push := func(v []byte, level int) {
		stack = append(stack, v)
		levels = append(levels, level)
		for len(stack) >= 2 && levels[len(levels)-1] == levels[len(levels)-2] {
			top := len(stack) - 1
			merged := b.hs.combine(stack[top-1], stack[top])
			lvl := levels[top] + 1
			stack = append(stack[:top-1], merged)
			levels = append(levels[:top-1], lvl)
		}
	}
	for _, e := range b.prefix {
		push(cloneBytes(e.Digest), e.Level)
	}
	var partial []FrontierEntry
	for s := b.firstSpan; s <= cur && s-b.firstSpan < len(b.shards); s++ {
		st, err := b.shards[s-b.firstSpan].quiesce()
		if err != nil {
			return nil, err
		}
		switch {
		case s < cur:
			// A complete span: its engine holds exactly one pending root at
			// span height (the span is a full power-of-two subtree).
			if len(st.frontier) != 1 || st.frontier[0].Level != spanDepth {
				return nil, fmt.Errorf("merkle: internal error: completed shard %d frontier has %d entries", s, len(st.frontier))
			}
			push(st.frontier[0].Digest, spanDepth)
		case b.added%b.span > 0:
			partial = st.frontier
		}
	}
	out := make([]FrontierEntry, 0, len(stack)+len(partial))
	for i := range stack {
		out = append(out, FrontierEntry{Level: levels[i], Digest: stack[i]})
	}
	out = append(out, partial...)
	return out, nil
}

// quiesce asks the shard worker to drain its channel and report its engine
// position.
func (sh *streamShard) quiesce() (shardState, error) {
	req := make(chan shardState)
	sh.flush <- req
	st := <-req
	if st.err != nil {
		return shardState{}, st.err
	}
	return st, nil
}

// RestoreStreamBuilder resumes a stream from a snapshot. The restored
// builder continues at leaf index snap.Added and produces a root
// byte-identical to an uninterrupted build over the same leaves. Options
// follow NewStreamBuilder: WithParallelism restores into sharded mode
// (workers are spawned for the spans at or after the restore point; the
// already-merged spans ride along as a prefix frontier), and the hasher
// must match the one the snapshot was taken with.
func RestoreStreamBuilder(snap *StreamSnapshot, opts ...Option) (*StreamBuilder, error) {
	o := buildOptions(opts)
	hs := newHashers(o)
	if err := validateSnapshot(snap); err != nil {
		return nil, err
	}
	capacity := nextPow2(snap.N)
	var b *StreamBuilder
	if shards := streamShards(o.parallelism, capacity); shards > 1 {
		b = &StreamBuilder{n: snap.N, added: snap.Added, cap: capacity, depth: log2(capacity), hs: hs}
		span := capacity / shards
		spanDepth := log2(span)
		firstSpan := snap.Added / span
		var partial []FrontierEntry
		for _, e := range snap.Frontier {
			if e.Level >= spanDepth {
				b.prefix = append(b.prefix, FrontierEntry{Level: e.Level, Digest: cloneBytes(e.Digest)})
			} else {
				partial = append(partial, e)
			}
		}
		b.startShards(shards, firstSpan, partial, snap.Added%span)
	} else {
		b = newSerialStream(snap.N, hs)
		b.restoreFrontier(snap.Added, snap.Frontier)
	}
	if snap.Window != nil {
		win, err := restoreWindowTracker(snap.Window, hs)
		if err != nil {
			return nil, err
		}
		b.win = win
	} else if o.window > 0 {
		return nil, fmt.Errorf("%w: snapshot carries no window state", ErrBadStreamSnapshot)
	}
	return b, nil
}

func validateSnapshot(snap *StreamSnapshot) error {
	if snap == nil {
		return fmt.Errorf("%w: nil snapshot", ErrBadStreamSnapshot)
	}
	if snap.N <= 0 {
		return fmt.Errorf("%w: non-positive leaf count %d", ErrBadStreamSnapshot, snap.N)
	}
	if snap.Added < 0 || snap.Added > snap.N {
		return fmt.Errorf("%w: position %d not in [0, %d]", ErrBadStreamSnapshot, snap.Added, snap.N)
	}
	// The frontier levels must be exactly the set bits of Added, in
	// strictly descending order — the binary-counter invariant.
	want := snap.Added
	i := 0
	for level := log2(nextPow2(snap.N)); level >= 0; level-- {
		if want>>uint(level)&1 == 0 {
			continue
		}
		if i >= len(snap.Frontier) || snap.Frontier[i].Level != level {
			return fmt.Errorf("%w: frontier missing level %d for position %d", ErrBadStreamSnapshot, level, snap.Added)
		}
		if snap.Frontier[i].Digest == nil {
			return fmt.Errorf("%w: nil digest at level %d", ErrBadStreamSnapshot, level)
		}
		i++
	}
	if i != len(snap.Frontier) {
		return fmt.Errorf("%w: %d extra frontier entries for position %d", ErrBadStreamSnapshot, len(snap.Frontier)-i, snap.Added)
	}
	if w := snap.Window; w != nil {
		if w.W < 1 || w.W != nextPow2(w.W) {
			return fmt.Errorf("%w: window size %d", ErrBadStreamSnapshot, w.W)
		}
		if w.Base < 0 || w.Base*w.W > snap.Added {
			return fmt.Errorf("%w: window base %d beyond position %d", ErrBadStreamSnapshot, w.Base, snap.Added)
		}
		full := snap.Added / w.W
		if w.Base+len(w.Roots) != full {
			return fmt.Errorf("%w: %d retained roots at base %d, want end %d", ErrBadStreamSnapshot, len(w.Roots), w.Base, full)
		}
		for i, r := range w.Roots {
			if r == nil {
				return fmt.Errorf("%w: nil window root %d", ErrBadStreamSnapshot, w.Base+i)
			}
		}
		partial := snap.Added % w.W
		j := 0
		for level := log2(w.W); level >= 0; level-- {
			if partial>>uint(level)&1 == 0 {
				continue
			}
			if j >= len(w.Partial) || w.Partial[j].Level != level || w.Partial[j].Digest == nil {
				return fmt.Errorf("%w: window partial frontier missing level %d", ErrBadStreamSnapshot, level)
			}
			j++
		}
		if j != len(w.Partial) {
			return fmt.Errorf("%w: %d extra window partial entries", ErrBadStreamSnapshot, len(w.Partial)-j)
		}
	}
	return nil
}

// windowTracker maintains standalone Merkle roots over consecutive w-leaf
// windows of the stream: the in-progress window runs a serial sub-builder,
// and finalized window roots land in a bounded ring. Memory is
// O(w + keep + log w) regardless of stream length.
type windowTracker struct {
	w    int
	keep int
	base int
	hs   hashers

	roots [][]byte
	eng   *StreamBuilder
}

func newWindowTracker(w, keep int, hs hashers) (*windowTracker, error) {
	if w < 1 || w != nextPow2(w) {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, w)
	}
	return &windowTracker{w: w, keep: keep, hs: hs, eng: newSerialStream(w, hs)}, nil
}

func restoreWindowTracker(snap *WindowSnapshot, hs hashers) (*windowTracker, error) {
	win, err := newWindowTracker(snap.W, snap.Keep, hs)
	if err != nil {
		return nil, err
	}
	win.base = snap.Base
	win.roots = make([][]byte, len(snap.Roots))
	for i, r := range snap.Roots {
		win.roots[i] = cloneBytes(r)
	}
	partial := snap.Added() % snap.W
	win.eng.restoreFrontier(partial, snap.Partial)
	return win, nil
}

// Added reconstructs the stream position implied by the window state.
func (s *WindowSnapshot) Added() int {
	partial := 0
	for _, e := range s.Partial {
		partial += 1 << uint(e.Level)
	}
	return (s.Base+len(s.Roots))*s.W + partial
}

func (t *windowTracker) add(value []byte) {
	// The engine's own validation already ran in StreamBuilder.Add.
	_ = t.eng.Add(value)
	if t.eng.added < t.w {
		return
	}
	root, _ := t.eng.Root()
	t.roots = append(t.roots, root)
	if t.keep > 0 && len(t.roots) > t.keep {
		drop := len(t.roots) - t.keep
		t.roots = append([][]byte(nil), t.roots[drop:]...)
		t.base += drop
	}
	t.eng = newSerialStream(t.w, t.hs)
}

func (t *windowTracker) snapshot() *WindowSnapshot {
	roots := make([][]byte, len(t.roots))
	for i, r := range t.roots {
		roots[i] = cloneBytes(r)
	}
	return &WindowSnapshot{W: t.w, Keep: t.keep, Base: t.base, Roots: roots, Partial: t.eng.frontier()}
}

// WindowRoot returns the Merkle root of the standalone tree over leaves
// [lo, hi) of the stream, computed from the retained per-window roots —
// the supervisor-side spot-check of a rolling commitment, served without
// holding any leaves. Requires WithWindowTracking; lo must be a multiple
// of the window size and hi either a multiple of it or the current stream
// position (a partial tail window is padded like any incomplete tree).
// Ranges older than the retained ring return ErrWindowUnavailable.
//
// WindowRoot(0, n) over a fully-added stream equals Root().
func (b *StreamBuilder) WindowRoot(lo, hi int) ([]byte, error) {
	t := b.win
	if t == nil {
		return nil, ErrNoWindowTracking
	}
	if lo < 0 || lo >= hi || hi > b.added || lo%t.w != 0 || (hi%t.w != 0 && hi != b.added) {
		return nil, fmt.Errorf("%w: range [%d, %d) at position %d, window %d", ErrWindowUnavailable, lo, hi, b.added, t.w)
	}
	first := lo / t.w
	if first < t.base {
		return nil, fmt.Errorf("%w: window %d evicted (ring starts at %d)", ErrWindowUnavailable, first, t.base)
	}
	spanDepth := log2(t.w)
	pads := t.hs.padTable(spanDepth)
	count := (hi - lo + t.w - 1) / t.w
	roots := make([][]byte, 0, count)
	for k := first; k < first+count; k++ {
		if k-t.base < len(t.roots) {
			roots = append(roots, t.roots[k-t.base])
			continue
		}
		// The tail window is the in-progress one: finalize a detached clone
		// of its engine and lift it to window height with all-pad siblings,
		// byte-identical to padding the window out leaf by leaf.
		partial := b.added % t.w
		clone := newSerialStream(partial, t.hs)
		clone.restoreFrontier(partial, t.eng.frontier())
		root, err := clone.Root()
		if err != nil {
			return nil, err
		}
		for h := clone.depth; h < spanDepth; h++ {
			root = t.hs.combine(root, pads[h])
		}
		roots = append(roots, root)
	}
	// Merge the window roots as super-leaves of a standalone tree over
	// [lo, hi): pad to a power of two with all-pad window roots and fold.
	total := nextPow2(count)
	for len(roots) < total {
		roots = append(roots, pads[spanDepth])
	}
	for m := len(roots); m > 1; m /= 2 {
		for i := 0; i < m; i += 2 {
			roots[i/2] = t.hs.combine(roots[i], roots[i+1])
		}
	}
	return cloneBytes(roots[0]), nil
}

// MarshalBinary encodes the snapshot with the same compact length-prefixed
// layout the wire codecs use, so checkpoints can embed it directly.
func (s *StreamSnapshot) MarshalBinary() ([]byte, error) {
	if err := validateSnapshot(s); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putFrontier := func(entries []FrontierEntry) {
		putUvarint(uint64(len(entries)))
		for _, e := range entries {
			putUvarint(uint64(e.Level))
			putUvarint(uint64(len(e.Digest)))
			buf.Write(e.Digest)
		}
	}
	putUvarint(uint64(s.N))
	putUvarint(uint64(s.Added))
	putFrontier(s.Frontier)
	if s.Window == nil {
		putUvarint(0)
	} else {
		putUvarint(1)
		putUvarint(uint64(s.Window.W))
		putUvarint(uint64(s.Window.Keep))
		putUvarint(uint64(s.Window.Base))
		putUvarint(uint64(len(s.Window.Roots)))
		for _, r := range s.Window.Roots {
			putUvarint(uint64(len(r)))
			buf.Write(r)
		}
		putFrontier(s.Window.Partial)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a snapshot produced by MarshalBinary and
// validates the binary-counter invariant before accepting it.
func (s *StreamSnapshot) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	bad := func(field string, err error) error {
		return fmt.Errorf("%w: %s: %v", ErrBadStreamSnapshot, field, err)
	}
	readFrontier := func(field string) ([]FrontierEntry, error) {
		count, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, bad(field, err)
		}
		if count > 128 {
			return nil, fmt.Errorf("%w: %s: %d entries", ErrBadStreamSnapshot, field, count)
		}
		entries := make([]FrontierEntry, 0, count)
		for i := uint64(0); i < count; i++ {
			level, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, bad(field, err)
			}
			if level > 63 {
				return nil, fmt.Errorf("%w: %s: level %d", ErrBadStreamSnapshot, field, level)
			}
			digest, err := readBytes(r)
			if err != nil {
				return nil, bad(field, err)
			}
			entries = append(entries, FrontierEntry{Level: int(level), Digest: digest})
		}
		return entries, nil
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return bad("leaf count", err)
	}
	added, err := binary.ReadUvarint(r)
	if err != nil {
		return bad("position", err)
	}
	if n > 1<<56 || added > n {
		return fmt.Errorf("%w: position %d of %d", ErrBadStreamSnapshot, added, n)
	}
	decoded := StreamSnapshot{N: int(n), Added: int(added)}
	if decoded.Frontier, err = readFrontier("frontier"); err != nil {
		return err
	}
	hasWindow, err := binary.ReadUvarint(r)
	if err != nil {
		return bad("window flag", err)
	}
	switch hasWindow {
	case 0:
	case 1:
		w := &WindowSnapshot{}
		var v uint64
		if v, err = binary.ReadUvarint(r); err != nil {
			return bad("window size", err)
		}
		if v > 1<<40 {
			return fmt.Errorf("%w: window size %d", ErrBadStreamSnapshot, v)
		}
		w.W = int(v)
		if v, err = binary.ReadUvarint(r); err != nil {
			return bad("window keep", err)
		}
		if v > 1<<40 {
			return fmt.Errorf("%w: window keep %d", ErrBadStreamSnapshot, v)
		}
		w.Keep = int(v)
		if v, err = binary.ReadUvarint(r); err != nil {
			return bad("window base", err)
		}
		if v > 1<<56 {
			return fmt.Errorf("%w: window base %d", ErrBadStreamSnapshot, v)
		}
		w.Base = int(v)
		count, err := binary.ReadUvarint(r)
		if err != nil {
			return bad("window root count", err)
		}
		if count > uint64(r.Len()) {
			return fmt.Errorf("%w: %d window roots exceed payload", ErrBadStreamSnapshot, count)
		}
		w.Roots = make([][]byte, 0, count)
		for i := uint64(0); i < count; i++ {
			root, err := readBytes(r)
			if err != nil {
				return bad("window root", err)
			}
			w.Roots = append(w.Roots, root)
		}
		if w.Partial, err = readFrontier("window partial"); err != nil {
			return err
		}
		decoded.Window = w
	default:
		return fmt.Errorf("%w: window flag %d", ErrBadStreamSnapshot, hasWindow)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadStreamSnapshot, r.Len())
	}
	if err := validateSnapshot(&decoded); err != nil {
		return err
	}
	*s = decoded
	return nil
}
