package merkle

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func snapLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		// Variable lengths exercise the raw-leaf level-0 frontier entries.
		leaves[i] = bytes.Repeat([]byte{byte(i), byte(i >> 8)}, 1+i%5)
	}
	return leaves
}

func serialRoot(t *testing.T, leaves [][]byte) []byte {
	t.Helper()
	b, err := NewStreamBuilder(len(leaves))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves {
		if err := b.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestStreamSnapshotRestoreRoots snapshots builders of every engine mode at
// every split point and restores them into every engine mode; all roots must
// be byte-identical to an uninterrupted serial build.
func TestStreamSnapshotRestoreRoots(t *testing.T) {
	modes := []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"sharded2", []Option{WithParallelism(2)}},
		{"sharded4", []Option{WithParallelism(4)}},
	}
	for _, n := range []int{1, 2, 3, 7, 8, 13, 16, 33, 70} {
		leaves := snapLeaves(n)
		want := serialRoot(t, leaves)
		for split := 0; split <= n; split++ {
			for _, from := range modes {
				for _, to := range modes {
					b, err := NewStreamBuilder(n, from.opts...)
					if err != nil {
						t.Fatal(err)
					}
					for _, l := range leaves[:split] {
						if err := b.Add(l); err != nil {
							t.Fatal(err)
						}
					}
					snap, err := b.Snapshot()
					if err != nil {
						t.Fatalf("n=%d split=%d %s: snapshot: %v", n, split, from.name, err)
					}
					// Marshal/unmarshal on the way so the wire form is what
					// actually gets restored.
					enc, err := snap.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					var decoded StreamSnapshot
					if err := decoded.UnmarshalBinary(enc); err != nil {
						t.Fatalf("n=%d split=%d: unmarshal: %v", n, split, err)
					}
					r, err := RestoreStreamBuilder(&decoded, to.opts...)
					if err != nil {
						t.Fatalf("n=%d split=%d %s->%s: restore: %v", n, split, from.name, to.name, err)
					}
					for _, l := range leaves[split:] {
						if err := r.Add(l); err != nil {
							t.Fatal(err)
						}
					}
					got, err := r.Root()
					if err != nil {
						t.Fatalf("n=%d split=%d %s->%s: root: %v", n, split, from.name, to.name, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("n=%d split=%d %s->%s: restored root differs", n, split, from.name, to.name)
					}
					// The original builder must keep working after Snapshot.
					for _, l := range leaves[split:] {
						if err := b.Add(l); err != nil {
							t.Fatal(err)
						}
					}
					cont, err := b.Root()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(cont, want) {
						t.Fatalf("n=%d split=%d %s: snapshot disturbed the builder", n, split, from.name)
					}
				}
			}
		}
	}
}

func TestStreamSnapshotAfterRoot(t *testing.T) {
	b, err := NewStreamBuilder(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Root(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Snapshot(); !errors.Is(err, ErrFinalized) {
		t.Fatalf("snapshot after root: got %v, want ErrFinalized", err)
	}
}

func TestStreamSnapshotValidation(t *testing.T) {
	b, err := NewStreamBuilder(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Add([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*StreamSnapshot){
		"added beyond n":   func(s *StreamSnapshot) { s.Added = s.N + 1 },
		"missing frontier": func(s *StreamSnapshot) { s.Frontier = s.Frontier[:1] },
		"extra frontier": func(s *StreamSnapshot) {
			s.Frontier = append(s.Frontier, FrontierEntry{Level: 1, Digest: []byte{1}})
		},
		"wrong level": func(s *StreamSnapshot) { s.Frontier[0].Level = 1 },
		"nil digest":  func(s *StreamSnapshot) { s.Frontier[0].Digest = nil },
	}
	for name, corrupt := range cases {
		bad := *snap
		bad.Frontier = append([]FrontierEntry(nil), snap.Frontier...)
		corrupt(&bad)
		if _, err := RestoreStreamBuilder(&bad); !errors.Is(err, ErrBadStreamSnapshot) {
			t.Errorf("%s: got %v, want ErrBadStreamSnapshot", name, err)
		}
	}
}

func TestStreamSnapshotUnmarshalCorruption(t *testing.T) {
	b, err := NewStreamBuilder(16, WithWindowTracking(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if err := b.Add([]byte{byte(i), 0xaa}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		var s StreamSnapshot
		if err := s.UnmarshalBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	var s StreamSnapshot
	if err := s.UnmarshalBinary(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestWindowRoot checks every aligned window range against a standalone
// tree built directly over the same leaves, including the padded tail.
func TestWindowRoot(t *testing.T) {
	const n, w = 23, 4
	leaves := snapLeaves(n)
	b, err := NewStreamBuilder(n, WithWindowTracking(w, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves {
		if err := b.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	for lo := 0; lo < n; lo += w {
		his := []int{}
		for hi := lo + w; hi < n; hi += w {
			his = append(his, hi)
		}
		his = append(his, n) // partial tail window
		for _, hi := range his {
			got, err := b.WindowRoot(lo, hi)
			if err != nil {
				t.Fatalf("WindowRoot(%d, %d): %v", lo, hi, err)
			}
			tree, err := Build(leaves[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			if want := tree.Root(); !bytes.Equal(got, want) {
				t.Fatalf("WindowRoot(%d, %d) differs from standalone tree", lo, hi)
			}
		}
	}
	// The full range must agree with the builder's own commitment.
	full, err := b.WindowRoot(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if want := serialRoot(t, leaves); !bytes.Equal(full, want) {
		t.Fatal("WindowRoot(0, n) differs from Root()")
	}
}

func TestWindowRootEvictionAndErrors(t *testing.T) {
	const n, w, keep = 32, 4, 2
	b, err := NewStreamBuilder(n, WithWindowTracking(w, keep))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := b.Add([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.WindowRoot(0, 4); !errors.Is(err, ErrWindowUnavailable) {
		t.Fatalf("evicted window: got %v", err)
	}
	if _, err := b.WindowRoot(12, 20); err != nil {
		t.Fatalf("retained windows: %v", err)
	}
	if _, err := b.WindowRoot(13, 17); !errors.Is(err, ErrWindowUnavailable) {
		t.Fatalf("unaligned lo: got %v", err)
	}
	if _, err := b.WindowRoot(12, 24); !errors.Is(err, ErrWindowUnavailable) {
		t.Fatalf("hi beyond stream: got %v", err)
	}
	plain, err := NewStreamBuilder(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.WindowRoot(0, 4); !errors.Is(err, ErrNoWindowTracking) {
		t.Fatalf("untracked builder: got %v", err)
	}
	if _, err := NewStreamBuilder(8, WithWindowTracking(3, 0)); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("non-power-of-two window: got %v", err)
	}
}

// TestWindowTrackingSurvivesSnapshot restores a window-tracked stream at an
// arbitrary split and checks window roots keep matching standalone trees.
func TestWindowTrackingSurvivesSnapshot(t *testing.T) {
	const n, w = 29, 8
	leaves := snapLeaves(n)
	for _, split := range []int{0, 3, 8, 11, 16, 21, 29} {
		b, err := NewStreamBuilder(n, WithWindowTracking(w, 0))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range leaves[:split] {
			if err := b.Add(l); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		enc, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var decoded StreamSnapshot
		if err := decoded.UnmarshalBinary(enc); err != nil {
			t.Fatal(err)
		}
		r, err := RestoreStreamBuilder(&decoded)
		if err != nil {
			t.Fatalf("split=%d: %v", split, err)
		}
		for _, l := range leaves[split:] {
			if err := r.Add(l); err != nil {
				t.Fatal(err)
			}
		}
		for lo := 0; lo < n; lo += w {
			hi := lo + w
			if hi > n {
				hi = n
			}
			got, err := r.WindowRoot(lo, hi)
			if err != nil {
				t.Fatalf("split=%d WindowRoot(%d, %d): %v", split, lo, hi, err)
			}
			tree, err := Build(leaves[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, tree.Root()) {
				t.Fatalf("split=%d: restored WindowRoot(%d, %d) differs", split, lo, hi)
			}
		}
	}
}

func BenchmarkStreamSnapshot(b *testing.B) {
	const n = 1 << 16
	sb, err := NewStreamBuilder(n)
	if err != nil {
		b.Fatal(err)
	}
	leaf := make([]byte, 32)
	for i := 0; i < n/2; i++ {
		if err := sb.Add(leaf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sb.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleStreamBuilder_Snapshot() {
	b, _ := NewStreamBuilder(4)
	_ = b.Add([]byte("a"))
	_ = b.Add([]byte("b"))
	snap, _ := b.Snapshot()
	enc, _ := snap.MarshalBinary()

	// ... process restarts; the snapshot bytes came back from disk ...

	var back StreamSnapshot
	_ = back.UnmarshalBinary(enc)
	r, _ := RestoreStreamBuilder(&back)
	_ = r.Add([]byte("c"))
	_ = r.Add([]byte("d"))
	root, _ := r.Root()

	full, _ := NewStreamBuilder(4)
	for _, l := range []string{"a", "b", "c", "d"} {
		_ = full.Add([]byte(l))
	}
	want, _ := full.Root()
	fmt.Println(bytes.Equal(root, want))
	// Output: true
}
