package merkle

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	const n, ell = 100, 3
	leaf := leafFunc(n)
	original, err := NewPartial(n, ell, leaf)
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}

	var buf bytes.Buffer
	if err := original.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), leaf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	if !bytes.Equal(restored.Root(), original.Root()) {
		t.Fatal("restored root differs")
	}
	if restored.N() != n || restored.SubtreeHeight() != ell {
		t.Fatalf("restored shape (n=%d, ℓ=%d)", restored.N(), restored.SubtreeHeight())
	}
	// Proofs from the restored tree must verify against the old root.
	for _, i := range []int{0, 1, 42, n - 1} {
		proof, err := restored.Prove(i)
		if err != nil {
			t.Fatalf("Prove(%d): %v", i, err)
		}
		if err := Verify(original.Root(), proof); err != nil {
			t.Fatalf("Verify(%d): %v", i, err)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	const n, ell = 64, 2
	leaf := leafFunc(n)
	original, err := NewPartial(n, ell, leaf)
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	path := filepath.Join(t.TempDir(), "tree.snap")
	if err := original.SaveSnapshotFile(path); err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	restored, err := LoadSnapshotFile(path, leaf)
	if err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	if !bytes.Equal(restored.Root(), original.Root()) {
		t.Fatal("restored root differs")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	const n, ell = 32, 2
	leaf := leafFunc(n)
	original, err := NewPartial(n, ell, leaf)
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	var buf bytes.Buffer
	if err := original.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	data := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		corrupted := append([]byte(nil), data...)
		corrupted[0] ^= 0xff
		if _, err := ReadSnapshot(bytes.NewReader(corrupted), leaf); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(data); cut += 13 {
			if _, err := ReadSnapshot(bytes.NewReader(data[:cut]), leaf); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("truncation at %d: err = %v, want ErrBadSnapshot", cut, err)
			}
		}
	})
	t.Run("flipped node byte", func(t *testing.T) {
		// Corrupting a stored digest must break the parent-hash check.
		corrupted := append([]byte(nil), data...)
		corrupted[len(corrupted)-1] ^= 0x01
		if _, err := ReadSnapshot(bytes.NewReader(corrupted), leaf); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrBadSnapshot", err)
		}
	})
	t.Run("nil leaf func", func(t *testing.T) {
		if _, err := ReadSnapshot(bytes.NewReader(data), nil); !errors.Is(err, ErrNilLeaf) {
			t.Fatalf("err = %v, want ErrNilLeaf", err)
		}
	})
}

func TestSnapshotWrongLeafFuncDetectedAtVerification(t *testing.T) {
	// A snapshot re-bound to a different leaf function cannot be detected
	// at load time (that is the point of not recomputing the domain), but
	// the resulting proofs fail verification.
	const n, ell = 64, 3
	original, err := NewPartial(n, ell, leafFunc(n))
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	var buf bytes.Buffer
	if err := original.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	wrongLeaf := func(i int) []byte { return []byte{byte(i), 0xee} }
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), wrongLeaf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	proof, err := restored.Prove(5)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Verify(original.Root(), proof); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("err = %v, want ErrRootMismatch", err)
	}
}

func TestSnapshotEllZeroAndFull(t *testing.T) {
	const n = 16
	leaf := leafFunc(n)
	for _, ell := range []int{0, 4} {
		original, err := NewPartial(n, ell, leaf)
		if err != nil {
			t.Fatalf("NewPartial(ℓ=%d): %v", ell, err)
		}
		var buf bytes.Buffer
		if err := original.WriteSnapshot(&buf); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
		restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), leaf)
		if err != nil {
			t.Fatalf("ReadSnapshot(ℓ=%d): %v", ell, err)
		}
		if !bytes.Equal(restored.Root(), original.Root()) {
			t.Fatalf("ℓ=%d: root mismatch", ell)
		}
	}
}
