package merkle

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Proof verification errors. ErrRootMismatch is the signal that a participant
// is cheating (Theorem 2 of the paper); the malformed-proof errors indicate a
// protocol violation rather than a detected lie.
var (
	// ErrRootMismatch is returned when the root reconstructed from the proof
	// differs from the committed root.
	ErrRootMismatch = errors.New("merkle: reconstructed root does not match commitment")
	// ErrMalformedProof is returned when a proof is structurally invalid.
	ErrMalformedProof = errors.New("merkle: malformed proof")
)

// Proof is the participant's evidence for a single sample x: the claimed
// f(x) value plus the sibling Φ values λ1..λH along the path from the leaf to
// the root. The supervisor reconstructs Φ(R') = Λ(f(x), λ1..λH) and compares
// it against the commitment (Step 4, Section 3.1).
type Proof struct {
	// Index is the zero-based leaf index of the sample within the domain.
	Index int
	// N is the number of real leaves in the tree the proof was drawn from.
	N int
	// Value is the claimed leaf value, Φ(L) = f(x).
	Value []byte
	// Siblings holds the Φ values of the sibling of each node on the
	// leaf-to-root path, ordered bottom-up.
	Siblings [][]byte
}

// RootFromProof reconstructs the Merkle root implied by the proof. This is
// the Λ(Φ(L), λ1..λH) computation of Section 3.2.
func RootFromProof(p *Proof, opts ...Option) ([]byte, error) {
	if err := validateProof(p); err != nil {
		return nil, err
	}
	hs := newHashers(buildOptions(opts))
	nh := hs.node()
	// One scratch digest serves the whole climb: combineInto absorbs its
	// inputs before writing, so cur may alias the scratch it is rewritten
	// into. The fallback (fixedLen == 0) allocates per level as before.
	var scratch []byte
	if hs.fixedLen > 0 {
		scratch = make([]byte, 0, hs.fixedLen)
	}
	cur := p.Value
	pos := nextPow2(p.N) + p.Index
	for _, sib := range p.Siblings {
		if pos&1 == 0 {
			cur = nh.combineInto(scratch, cur, sib)
		} else {
			cur = nh.combineInto(scratch, sib, cur)
		}
		pos /= 2
	}
	if hs.fixedLen > 0 && len(p.Siblings) > 0 {
		// Detach the result from the scratch buffer before handing it out.
		cur = cloneBytes(cur)
	}
	return cur, nil
}

// Verify checks the proof against the committed root. It returns nil when
// the proof is consistent with the commitment, ErrRootMismatch when the
// participant's claimed value was not the one committed (a caught cheat),
// and ErrMalformedProof for structurally invalid proofs.
func Verify(root []byte, p *Proof, opts ...Option) error {
	got, err := RootFromProof(p, opts...)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, root) {
		return ErrRootMismatch
	}
	return nil
}

func validateProof(p *Proof) error {
	if p == nil {
		return fmt.Errorf("%w: nil proof", ErrMalformedProof)
	}
	if p.N <= 0 {
		return fmt.Errorf("%w: non-positive leaf count %d", ErrMalformedProof, p.N)
	}
	if p.Index < 0 || p.Index >= p.N {
		return fmt.Errorf("%w: index %d not in [0, %d)", ErrMalformedProof, p.Index, p.N)
	}
	if p.Value == nil {
		return fmt.Errorf("%w: nil leaf value", ErrMalformedProof)
	}
	if want := log2(nextPow2(p.N)); len(p.Siblings) != want {
		return fmt.Errorf("%w: %d siblings, want %d for n=%d",
			ErrMalformedProof, len(p.Siblings), want, p.N)
	}
	for i, s := range p.Siblings {
		if s == nil {
			return fmt.Errorf("%w: nil sibling at level %d", ErrMalformedProof, i)
		}
	}
	return nil
}

// MarshalBinary encodes the proof with a compact length-prefixed layout:
// uvarint(index) || uvarint(n) || uvarint(len(value)) || value ||
// uvarint(len(siblings)) || (uvarint(len(s)) || s)*.
func (p *Proof) MarshalBinary() ([]byte, error) {
	if err := validateProof(p); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putUvarint(uint64(p.Index))
	putUvarint(uint64(p.N))
	putUvarint(uint64(len(p.Value)))
	buf.Write(p.Value)
	putUvarint(uint64(len(p.Siblings)))
	for _, s := range p.Siblings {
		putUvarint(uint64(len(s)))
		buf.Write(s)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a proof produced by MarshalBinary.
func (p *Proof) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	index, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: index: %v", ErrMalformedProof, err)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: leaf count: %v", ErrMalformedProof, err)
	}
	value, err := readBytes(r)
	if err != nil {
		return fmt.Errorf("%w: value: %v", ErrMalformedProof, err)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: sibling count: %v", ErrMalformedProof, err)
	}
	const maxSiblings = 64 // a complete binary tree cannot be deeper on 64-bit indices
	if count > maxSiblings {
		return fmt.Errorf("%w: sibling count %d exceeds %d", ErrMalformedProof, count, maxSiblings)
	}
	siblings := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		s, err := readBytes(r)
		if err != nil {
			return fmt.Errorf("%w: sibling %d: %v", ErrMalformedProof, i, err)
		}
		siblings = append(siblings, s)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformedProof, r.Len())
	}
	decoded := Proof{
		Index:    int(index),
		N:        int(n),
		Value:    value,
		Siblings: siblings,
	}
	if err := validateProof(&decoded); err != nil {
		return err
	}
	*p = decoded
	return nil
}

// EncodedSize reports the exact number of bytes MarshalBinary will produce.
// The grid layer uses it for communication accounting without re-encoding.
func (p *Proof) EncodedSize() int {
	size := uvarintLen(uint64(p.Index)) + uvarintLen(uint64(p.N))
	size += uvarintLen(uint64(len(p.Value))) + len(p.Value)
	size += uvarintLen(uint64(len(p.Siblings)))
	for _, s := range p.Siblings {
		size += uvarintLen(uint64(len(s))) + len(s)
	}
	return size
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("declared length %d exceeds remaining %d", n, r.Len())
	}
	out := make([]byte, n)
	if n == 0 {
		// bytes.Reader reports io.EOF for empty reads at the end of the
		// buffer; zero-length leaf values are legal.
		return out, nil
	}
	if _, err := r.Read(out); err != nil {
		return nil, err
	}
	return out, nil
}

func uvarintLen(v uint64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v)
}
