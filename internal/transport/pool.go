package transport

import "sync"

// payloadPool recycles receive-side payload buffers. Every framed receive
// used to allocate its payload; under pipelined sessions that is one
// frame-sized allocation per batch, and batches arrive continuously. The
// pool closes the loop: the grid layer hands the buffer back once a frame
// has been fully decoded (decoders copy every sub-payload out, so the outer
// buffer is dead the moment decoding returns).
var payloadPool sync.Pool

// getPayload returns a length-n buffer for an incoming frame payload,
// reusing a recycled buffer when its capacity suffices. A pooled buffer that
// is too small for this frame is dropped for the GC instead of re-pooled, so
// a stream of growing frames cannot churn the pool.
func getPayload(n int) []byte {
	if v := payloadPool.Get(); v != nil {
		if buf := *(v.(*[]byte)); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]byte, n)
}

// RecyclePayload returns a received frame's payload buffer to the pool.
//
// Ownership rule: the caller asserts that no reference into the buffer
// escapes — neither retained by the caller nor reachable through anything
// decoded from it. In this codebase that holds exactly at the batch-decode
// hand-off (decodeBatch copies all sub-payloads), and must NOT be applied to
// frames that are forwarded onward (the broker relays the original buffer)
// or whose payload is retained by a decoder. Recycling is a pure
// optimization: buffers that never come back are collected as usual, and
// byte accounting is untouched because counters are credited before any
// recycle point.
func RecyclePayload(p []byte) {
	if cap(p) == 0 {
		return
	}
	payloadPool.Put(&p)
}
