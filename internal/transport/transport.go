// Package transport moves protocol messages between supervisor, broker, and
// participants, with exact byte accounting so the experiments can measure
// the paper's O(n) vs O(m log n) communication claim on real traffic.
//
// Two implementations share one frame format ([type:1][length:4][payload]):
// an in-memory duplex pipe for simulations and a TCP transport (package
// net) proving the protocol runs over real sockets. A fault-injection
// wrapper drops or garbles frames for failure testing.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Errors reported by this package.
var (
	// ErrClosed is returned for operations on a closed connection.
	ErrClosed = errors.New("transport: connection closed")
	// ErrTimeout is returned when a receive deadline expires.
	ErrTimeout = errors.New("transport: receive timed out")
	// ErrFrameTooLarge guards against absurd declared frame lengths.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
)

// MaxFrameBytes bounds a single frame payload. Responses carry m proofs of
// O(log n) digests each, far below this limit; full naive uploads of very
// large tasks must be chunked by the caller.
const MaxFrameBytes = 64 << 20

// frameOverhead is the per-message header: 1 type byte + 4 length bytes.
const frameOverhead = 5

// Message is one protocol frame: an application-defined type tag plus an
// opaque payload.
type Message struct {
	// Type tags the payload (see the grid package's message kinds).
	Type uint8
	// Payload is the encoded message body.
	Payload []byte
}

// FrameSize reports the on-wire size of the message, header included. Both
// transports account exactly this many bytes per send.
func (m Message) FrameSize() int64 {
	return frameOverhead + int64(len(m.Payload))
}

// Conn is a bidirectional, message-oriented connection. Send and Recv are
// each safe for one concurrent caller per direction; Close may be called
// from any goroutine and unblocks pending operations.
type Conn interface {
	// Send transmits one message.
	Send(m Message) error
	// Recv blocks for the next message. It returns io.EOF after the peer
	// closes and all delivered messages are drained.
	Recv() (Message, error)
	// Close releases the connection.
	Close() error
	// Stats exposes the traffic counters for this endpoint.
	Stats() *Stats
}

// Stats counts traffic at one connection endpoint. All methods are safe for
// concurrent use.
type Stats struct {
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
}

// BytesSent reports total bytes sent, frame headers included.
func (s *Stats) BytesSent() int64 { return s.bytesSent.Load() }

// BytesRecv reports total bytes received, frame headers included.
func (s *Stats) BytesRecv() int64 { return s.bytesRecv.Load() }

// MsgsSent reports the number of messages sent.
func (s *Stats) MsgsSent() int64 { return s.msgsSent.Load() }

// MsgsRecv reports the number of messages received.
func (s *Stats) MsgsRecv() int64 { return s.msgsRecv.Load() }

func (s *Stats) recordSend(m Message) {
	s.bytesSent.Add(m.FrameSize())
	s.msgsSent.Add(1)
}

func (s *Stats) recordRecv(m Message) {
	s.bytesRecv.Add(m.FrameSize())
	s.msgsRecv.Add(1)
}

// checkFrameSize validates a payload length against MaxFrameBytes.
func checkFrameSize(n int) error {
	if n > MaxFrameBytes {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFrameBytes)
	}
	return nil
}

// drainEOF normalizes closed-connection read errors to io.EOF.
func drainEOF(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return io.EOF
	}
	return err
}
