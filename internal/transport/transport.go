// Package transport moves protocol messages between supervisor, broker, and
// participants, with exact byte accounting so the experiments can measure
// the paper's O(n) vs O(m log n) communication claim on real traffic.
//
// Two implementations share one frame format
// ([type:1][length:4][crc:4][payload]): an in-memory duplex pipe for
// simulations and a TCP transport (package net) proving the protocol runs
// over real sockets. Every frame carries a CRC-32 computed at send time, so
// link damage surfaces as ErrFrameCorrupt at the receiver in every wire
// mode — dialogue exchanges included — instead of masquerading as a peer
// protocol violation. A fault-injection wrapper drops or garbles frames for
// failure testing.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// Errors reported by this package.
var (
	// ErrClosed is returned for operations on a closed connection.
	ErrClosed = errors.New("transport: connection closed")
	// ErrTimeout is returned when a receive deadline expires.
	ErrTimeout = errors.New("transport: receive timed out")
	// ErrFrameTooLarge guards against absurd declared frame lengths.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrFrameCorrupt is returned by Recv when a frame fails its CRC-32 —
	// link damage rather than peer misbehavior. The frame's bytes are still
	// counted at the receiver (they crossed the wire) but its content is
	// discarded.
	ErrFrameCorrupt = errors.New("transport: frame failed integrity check")
)

// MaxFrameBytes bounds a single frame payload. Responses carry m proofs of
// O(log n) digests each, far below this limit; full naive uploads of very
// large tasks must be chunked by the caller.
const MaxFrameBytes = 64 << 20

// frameOverhead is the per-message header: 1 type byte + 4 length bytes +
// 4 CRC-32 bytes.
const frameOverhead = 9

// Message is one protocol frame: an application-defined type tag plus an
// opaque payload.
type Message struct {
	// Type tags the payload (see the grid package's message kinds).
	Type uint8
	// Payload is the encoded message body.
	Payload []byte

	// corrupted marks a frame damaged in transit. The TCP transport detects
	// damage with the real on-wire CRC-32; the in-memory pipe has no byte
	// stream to corrupt, so the fault injector sets this flag instead — the
	// exact effect a bit flip under the frame CRC would have, since CRC-32
	// catches every single-bit error. Recv surfaces it as ErrFrameCorrupt.
	corrupted bool
}

// FrameSize reports the on-wire size of the message, header included. Both
// transports account exactly this many bytes per send.
func (m Message) FrameSize() int64 {
	return frameOverhead + int64(len(m.Payload))
}

// Conn is a bidirectional, message-oriented connection. Send and Recv are
// each safe for one concurrent caller per direction; Close may be called
// from any goroutine and unblocks pending operations.
type Conn interface {
	// Send transmits one message.
	Send(m Message) error
	// Recv blocks for the next message. It returns io.EOF after the peer
	// closes and all delivered messages are drained.
	Recv() (Message, error)
	// Close releases the connection.
	Close() error
	// Stats exposes the traffic counters for this endpoint.
	Stats() *Stats
}

// Stats counts traffic at one connection endpoint. All methods are safe for
// concurrent use.
type Stats struct {
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
}

// BytesSent reports total bytes sent, frame headers included.
func (s *Stats) BytesSent() int64 { return s.bytesSent.Load() }

// BytesRecv reports total bytes received, frame headers included.
func (s *Stats) BytesRecv() int64 { return s.bytesRecv.Load() }

// MsgsSent reports the number of messages sent.
func (s *Stats) MsgsSent() int64 { return s.msgsSent.Load() }

// MsgsRecv reports the number of messages received.
func (s *Stats) MsgsRecv() int64 { return s.msgsRecv.Load() }

// recordSend credits one sent frame to the connection counters.
//
//gridlint:credit the transport layer owns its connection counters
func (s *Stats) recordSend(m Message) {
	s.bytesSent.Add(m.FrameSize())
	s.msgsSent.Add(1)
}

// recordRecv credits one received frame to the connection counters.
//
//gridlint:credit the transport layer owns its connection counters
func (s *Stats) recordRecv(m Message) {
	s.bytesRecv.Add(m.FrameSize())
	s.msgsRecv.Add(1)
}

// CreditSend credits n bytes and one message to the sent counters. It
// exists for virtual connections layered above transport — a multiplexed
// route that shares a physical link still owes its endpoint honest
// counters, denominated in the frame sizes its traffic would have cost on
// a dedicated link.
//
//gridlint:credit virtual conns above transport credit their own endpoint counters
func (s *Stats) CreditSend(n int64) {
	s.bytesSent.Add(n)
	s.msgsSent.Add(1)
}

// CreditRecv credits n bytes and one message to the received counters; the
// receive-side counterpart of CreditSend.
//
//gridlint:credit virtual conns above transport credit their own endpoint counters
func (s *Stats) CreditRecv(n int64) {
	s.bytesRecv.Add(n)
	s.msgsRecv.Add(1)
}

// checkFrameSize validates a payload length against MaxFrameBytes.
func checkFrameSize(n int) error {
	if n > MaxFrameBytes {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFrameBytes)
	}
	return nil
}

// drainEOF normalizes closed-connection read errors to io.EOF.
func drainEOF(err error) error {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return io.EOF
	}
	return err
}
