package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// Listener accepts TCP connections speaking the framed message protocol.
type Listener struct {
	inner net.Listener
}

// Listen opens a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{inner: l}, nil
}

// Addr reports the bound address, useful with port 0.
func (l *Listener) Addr() string { return l.inner.Addr().String() }

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return newTCPConn(c), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Dial connects to a transport listener at addr.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

// DialTimeout is Dial with a connect deadline.
func DialTimeout(addr string, d time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

// tcpConn frames messages over a TCP stream:
// [type:1][len:4 BE][crc:4 BE][payload], where crc is CRC-32 (IEEE) over
// the type byte and the payload.
type tcpConn struct {
	conn  net.Conn
	br    *bufio.Reader
	wmu   sync.Mutex // serializes writes
	stats Stats
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{conn: c, br: bufio.NewReader(c)}
}

// Send implements Conn.
func (c *tcpConn) Send(m Message) error {
	if err := checkFrameSize(len(m.Payload)); err != nil {
		return err
	}
	var header [frameOverhead]byte
	header[0] = m.Type
	binary.BigEndian.PutUint32(header[1:5], uint32(len(m.Payload)))
	sum := frameChecksum(m)
	if m.corrupted {
		// A fault injector upstream garbled the frame; emit a broken CRC so
		// the damage is real on the socket, not just a process-local flag.
		sum = ^sum
	}
	binary.BigEndian.PutUint32(header[5:], sum)

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(header[:]); err != nil {
		return normalizeNetErr(err)
	}
	if _, err := c.conn.Write(m.Payload); err != nil {
		return normalizeNetErr(err)
	}
	c.stats.recordSend(m)
	return nil
}

// Recv implements Conn.
func (c *tcpConn) Recv() (Message, error) {
	var header [frameOverhead]byte
	if _, err := io.ReadFull(c.br, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, normalizeNetErr(drainEOF(err))
	}
	length := int(binary.BigEndian.Uint32(header[1:5]))
	if err := checkFrameSize(length); err != nil {
		return Message{}, err
	}
	payload := getPayload(length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		RecyclePayload(payload)
		return Message{}, normalizeNetErr(drainEOF(err))
	}
	m := Message{Type: header[0], Payload: payload}
	// The frame crossed the wire either way; count it before the integrity
	// check so receiver accounting matches the link.
	c.stats.recordRecv(m)
	if got, want := frameChecksum(m), binary.BigEndian.Uint32(header[5:]); got != want {
		// The corrupt payload is dropped here, never delivered; its buffer
		// can go straight back to the pool (its bytes were already counted).
		RecyclePayload(payload)
		return Message{}, fmt.Errorf("%w: frame crc %08x, want %08x", ErrFrameCorrupt, got, want)
	}
	return m, nil
}

// frameChecksum is the per-frame CRC-32 (IEEE) over the type byte and the
// payload — the integrity check every framed transport carries.
func frameChecksum(m Message) uint32 {
	sum := crc32.Update(0, crc32.IEEETable, []byte{m.Type})
	return crc32.Update(sum, crc32.IEEETable, m.Payload)
}

// Close implements Conn.
func (c *tcpConn) Close() error { return c.conn.Close() }

// Stats implements Conn.
func (c *tcpConn) Stats() *Stats { return &c.stats }

// normalizeNetErr maps closed-connection errors onto ErrClosed so callers
// can treat both transports uniformly.
func normalizeNetErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}
