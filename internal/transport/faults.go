package transport

import (
	"math/rand"
	"sync"
	"time"
)

// FaultPlan describes injected failures for testing: messages may be
// silently dropped or have one payload byte flipped in transit. A garbled
// frame is marked corrupted, so the receiving endpoint's per-frame CRC
// check rejects it with ErrFrameCorrupt — exactly what a bit flip under
// the framing checksum does on a real link. Faults are applied on the send
// path with a seeded generator, so failure tests are reproducible.
type FaultPlan struct {
	// DropProb is the probability a sent message vanishes.
	DropProb float64
	// GarbleProb is the probability a sent message has one byte corrupted.
	GarbleProb float64
	// Seed fixes the fault sequence.
	Seed int64
}

// WithFaults wraps conn so sends are subjected to the plan. Receive and
// close behaviour pass through; statistics still count attempted sends so
// accounting stays comparable.
func WithFaults(conn Conn, plan FaultPlan) Conn {
	return &faultConn{
		Conn: conn,
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed)),
	}
}

// WithLatency wraps conn so every Send blocks an extra d before the frame
// enters the wire — a fixed one-way link-delay model. Protocols that batch
// or pipeline pay the delay once per frame instead of once per message,
// which is exactly the effect the pipelined-session benchmarks measure.
// Receive, close, and statistics pass through; d <= 0 returns conn as is.
func WithLatency(conn Conn, d time.Duration) Conn {
	if d <= 0 {
		return conn
	}
	return &latencyConn{Conn: conn, delay: d}
}

// latencyConn delays sends in front of an inner connection.
type latencyConn struct {
	Conn

	delay time.Duration
}

// Send implements Conn, paying the link delay first.
func (c *latencyConn) Send(m Message) error {
	time.Sleep(c.delay)
	return c.Conn.Send(m)
}

// faultConn injects faults in front of an inner connection.
type faultConn struct {
	Conn

	plan FaultPlan
	mu   sync.Mutex
	rng  *rand.Rand
}

// Send implements Conn, applying the fault plan.
func (c *faultConn) Send(m Message) error {
	c.mu.Lock()
	drop := c.rng.Float64() < c.plan.DropProb
	garble := !drop && c.rng.Float64() < c.plan.GarbleProb
	var garbleAt int
	var garbleBit uint
	if garble && len(m.Payload) > 0 {
		garbleAt = c.rng.Intn(len(m.Payload))
		garbleBit = uint(c.rng.Intn(8))
	}
	c.mu.Unlock()

	if drop {
		// The message disappears on the wire; the sender still paid for it.
		c.Conn.Stats().recordSend(m)
		return nil
	}
	if garble {
		payload := m.Payload
		if len(payload) > 0 {
			payload = append([]byte(nil), m.Payload...)
			payload[garbleAt] ^= 1 << garbleBit
		}
		// corrupted makes the receiver's CRC check fire even when the flip
		// landed in the (unmodeled) frame header of an empty payload.
		m = Message{Type: m.Type, Payload: payload, corrupted: true}
	}
	return c.Conn.Send(m)
}
