package transport

import (
	"testing"

	"uncheatgrid/internal/leakcheck"
)

// TestMain fails the package when any test leaves a goroutine behind: pipe
// shovels and TCP accept loops must be joined by Close.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
