package transport

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// pipeOptions configure an in-memory pipe.
type pipeOptions struct {
	recvTimeout time.Duration
	buffer      int
}

// PipeOption customizes Pipe.
type PipeOption interface {
	apply(*pipeOptions)
}

type recvTimeoutOption time.Duration

func (o recvTimeoutOption) apply(p *pipeOptions) { p.recvTimeout = time.Duration(o) }

// WithRecvTimeout makes Recv fail with ErrTimeout after d. The default (0)
// blocks until a message arrives or the pipe closes; fault-injection tests
// need the timeout to observe dropped frames.
func WithRecvTimeout(d time.Duration) PipeOption { return recvTimeoutOption(d) }

type bufferOption int

func (o bufferOption) apply(p *pipeOptions) { p.buffer = int(o) }

// WithBuffer sets the per-direction queue depth (default 1).
func WithBuffer(n int) PipeOption { return bufferOption(n) }

// Pipe creates a connected in-memory duplex pair. Bytes are accounted at
// both endpoints using the same frame sizes as the TCP transport, so
// simulated and real runs report comparable traffic.
func Pipe(opts ...PipeOption) (Conn, Conn) {
	po := pipeOptions{buffer: 1}
	for _, opt := range opts {
		opt.apply(&po)
	}
	ab := make(chan Message, po.buffer)
	ba := make(chan Message, po.buffer)
	closedA := make(chan struct{})
	closedB := make(chan struct{})
	a := &pipeConn{
		send: ab, recv: ba,
		closed: closedA, peerClosed: closedB,
		recvTimeout: po.recvTimeout,
	}
	b := &pipeConn{
		send: ba, recv: ab,
		closed: closedB, peerClosed: closedA,
		recvTimeout: po.recvTimeout,
	}
	return a, b
}

// pipeConn is one endpoint of an in-memory duplex pipe.
type pipeConn struct {
	send        chan Message
	recv        chan Message
	closed      chan struct{}
	peerClosed  chan struct{}
	recvTimeout time.Duration
	closeOnce   sync.Once
	stats       Stats
}

var _ Conn = (*pipeConn)(nil)

// Send implements Conn.
func (c *pipeConn) Send(m Message) error {
	if err := checkFrameSize(len(m.Payload)); err != nil {
		return err
	}
	// Check close signals first: a ready buffered channel must not win the
	// select against an already-closed peer.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peerClosed:
		return ErrClosed
	case c.send <- m:
		c.stats.recordSend(m)
		return nil
	}
}

// Recv implements Conn.
func (c *pipeConn) Recv() (Message, error) {
	var timeout <-chan time.Time
	if c.recvTimeout > 0 {
		timer := time.NewTimer(c.recvTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case m := <-c.recv:
		return c.deliver(m)
	case <-c.closed:
		return Message{}, ErrClosed
	case <-timeout:
		return Message{}, ErrTimeout
	case <-c.peerClosed:
		// Drain messages the peer queued before closing.
		select {
		case m := <-c.recv:
			return c.deliver(m)
		default:
			return Message{}, io.EOF
		}
	}
}

// deliver accounts an arrived frame and applies the integrity check a
// framed transport would: a frame garbled in transit fails its CRC and is
// discarded with ErrFrameCorrupt after its bytes are counted.
func (c *pipeConn) deliver(m Message) (Message, error) {
	c.stats.recordRecv(m)
	if m.corrupted {
		return Message{}, fmt.Errorf("%w: frame garbled in transit", ErrFrameCorrupt)
	}
	return m, nil
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// Stats implements Conn.
func (c *pipeConn) Stats() *Stats { return &c.stats }
