package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	want := Message{Type: 3, Payload: []byte("hello grid")}
	done := make(chan error, 1)
	go func() { done <- a.Send(want) }()

	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestPipeBothDirections(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		m, err := b.Recv()
		if err != nil {
			return
		}
		m.Payload = append(m.Payload, '!')
		_ = b.Send(m)
	}()
	if err := a.Send(Message{Type: 1, Payload: []byte("ping")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	reply, err := a.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(reply.Payload) != "ping!" {
		t.Fatalf("reply = %q", reply.Payload)
	}
}

func TestPipeStatsCountFrames(t *testing.T) {
	a, b := Pipe(WithBuffer(4))
	defer a.Close()
	defer b.Close()

	payload := []byte("0123456789")
	if err := a.Send(Message{Type: 1, Payload: payload}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}

	wantBytes := int64(frameOverhead + len(payload))
	if got := a.Stats().BytesSent(); got != wantBytes {
		t.Errorf("a BytesSent = %d, want %d", got, wantBytes)
	}
	if got := b.Stats().BytesRecv(); got != wantBytes {
		t.Errorf("b BytesRecv = %d, want %d", got, wantBytes)
	}
	if a.Stats().MsgsSent() != 1 || b.Stats().MsgsRecv() != 1 {
		t.Error("message counters wrong")
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	defer b.Close()

	errs := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-errs; !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after own close: err = %v, want ErrClosed", err)
	}
}

func TestPipePeerCloseGivesEOFAfterDrain(t *testing.T) {
	a, b := Pipe(WithBuffer(2))
	if err := a.Send(Message{Type: 9, Payload: []byte("last words")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The queued message must still be deliverable.
	m, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if string(m.Payload) != "last words" {
		t.Fatalf("payload = %q", m.Payload)
	}
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("Recv after drain: err = %v, want io.EOF", err)
	}
}

func TestPipeSendToClosedPeer(t *testing.T) {
	a, b := Pipe()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send(Message{Type: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send: err = %v, want ErrClosed", err)
	}
}

func TestPipeRecvTimeout(t *testing.T) {
	a, b := Pipe(WithRecvTimeout(20 * time.Millisecond))
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := b.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv: err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestPipeDoubleCloseIsSafe(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestPipeRejectsOversizedFrame(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	huge := make([]byte, MaxFrameBytes+1)
	if err := a.Send(Message{Type: 1, Payload: huge}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("Send: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	type acceptResult struct {
		conn Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := l.Accept()
		accepted <- acceptResult{conn: c, err: err}
	}()

	client, err := DialTimeout(l.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	res := <-accepted
	if res.err != nil {
		t.Fatalf("Accept: %v", res.err)
	}
	server := res.conn
	defer server.Close()

	// Client → server.
	want := Message{Type: 7, Payload: []byte("over real sockets")}
	if err := client.Send(want); err != nil {
		t.Fatalf("client Send: %v", err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatalf("server Recv: %v", err)
	}
	if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	// Server → client, multiple frames preserving boundaries.
	for i := 0; i < 3; i++ {
		if err := server.Send(Message{Type: uint8(i), Payload: []byte{byte(i), byte(i)}}); err != nil {
			t.Fatalf("server Send %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		m, err := client.Recv()
		if err != nil {
			t.Fatalf("client Recv %d: %v", i, err)
		}
		if m.Type != uint8(i) || len(m.Payload) != 2 {
			t.Fatalf("frame %d corrupted: %+v", i, m)
		}
	}

	// Byte accounting matches across endpoints.
	if client.Stats().BytesSent() != server.Stats().BytesRecv() {
		t.Errorf("client sent %d, server received %d",
			client.Stats().BytesSent(), server.Stats().BytesRecv())
	}

	// EOF after close.
	if err := server.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	if _, err := client.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("client Recv after server close: err = %v, want io.EOF", err)
	}
}

func TestTCPEmptyPayload(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		m, err := c.Recv()
		if err == nil {
			_ = c.Send(m)
		}
	}()
	client, err := DialTimeout(l.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if err := client.Send(Message{Type: 42}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := client.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.Type != 42 || len(m.Payload) != 0 {
		t.Fatalf("echo = %+v", m)
	}
}

func TestFaultDropLosesMessages(t *testing.T) {
	a, b := Pipe(WithRecvTimeout(30*time.Millisecond), WithBuffer(8))
	defer a.Close()
	defer b.Close()
	lossy := WithFaults(a, FaultPlan{DropProb: 1, Seed: 1})

	if err := lossy.Send(Message{Type: 1, Payload: []byte("gone")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv: err = %v, want ErrTimeout (message dropped)", err)
	}
	// Accounting still charges the sender.
	if lossy.Stats().MsgsSent() != 1 {
		t.Fatalf("MsgsSent = %d, want 1", lossy.Stats().MsgsSent())
	}
}

func TestFaultGarbleDetectedByFrameChecksum(t *testing.T) {
	a, b := Pipe(WithBuffer(2))
	defer a.Close()
	defer b.Close()
	garbler := WithFaults(a, FaultPlan{GarbleProb: 1, Seed: 2})

	original := []byte{0x00, 0x00, 0x00, 0x00}
	if err := garbler.Send(Message{Type: 1, Payload: original}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// The damaged frame fails the per-frame integrity check — a link fault,
	// not a delivered-but-wrong payload.
	if _, err := b.Recv(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("Recv: err = %v, want ErrFrameCorrupt", err)
	}
	// The frame still crossed the wire: both endpoints count it.
	if b.Stats().MsgsRecv() != 1 || b.Stats().BytesRecv() != int64(frameOverhead+len(original)) {
		t.Errorf("corrupt frame not accounted: msgs=%d bytes=%d",
			b.Stats().MsgsRecv(), b.Stats().BytesRecv())
	}
	// The sender's buffer must not be mutated.
	for _, v := range original {
		if v != 0 {
			t.Fatal("sender payload mutated in place")
		}
	}
	// A clean frame after the garbled one delivers normally.
	if err := a.Send(Message{Type: 2, Payload: []byte("ok")}); err != nil {
		t.Fatalf("clean Send: %v", err)
	}
	if m, err := b.Recv(); err != nil || string(m.Payload) != "ok" {
		t.Fatalf("clean Recv = %+v, %v", m, err)
	}
}

func TestTCPGarbleDetectedByFrameChecksum(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := DialTimeout(l.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	garbler := WithFaults(client, FaultPlan{GarbleProb: 1, Seed: 4})
	if err := garbler.Send(Message{Type: 5, Payload: []byte("damaged goods")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// The corruption travels as a real broken CRC on the socket.
	if _, err := server.Recv(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("Recv: err = %v, want ErrFrameCorrupt", err)
	}
}

func TestFaultPartialDropRate(t *testing.T) {
	a, b := Pipe(WithRecvTimeout(20*time.Millisecond), WithBuffer(256))
	defer a.Close()
	defer b.Close()
	lossy := WithFaults(a, FaultPlan{DropProb: 0.5, Seed: 3})

	const sent = 200
	for i := 0; i < sent; i++ {
		if err := lossy.Send(Message{Type: 1, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	delivered := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		delivered++
	}
	if delivered < 60 || delivered > 140 {
		t.Fatalf("delivered %d of %d at 50%% drop", delivered, sent)
	}
}

func TestPipeConcurrentTraffic(t *testing.T) {
	a, b := Pipe(WithBuffer(16))
	defer a.Close()
	defer b.Close()

	const n = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(Message{Type: 1, Payload: []byte(fmt.Sprintf("m%d", i))}); err != nil {
				t.Errorf("Send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			m, err := b.Recv()
			if err != nil {
				t.Errorf("Recv %d: %v", i, err)
				return
			}
			if want := fmt.Sprintf("m%d", i); string(m.Payload) != want {
				t.Errorf("out of order: got %q, want %q", m.Payload, want)
				return
			}
		}
	}()
	wg.Wait()
}

func TestLatencyConnDelaysAndDelivers(t *testing.T) {
	a, b := Pipe(WithBuffer(2))
	slow := WithLatency(a, 2*time.Millisecond)
	start := time.Now()
	if err := slow.Send(Message{Type: 1, Payload: []byte("hi")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("Send returned after %v, want >= 2ms link delay", elapsed)
	}
	msg, err := b.Recv()
	if err != nil || string(msg.Payload) != "hi" {
		t.Fatalf("Recv = %+v, %v", msg, err)
	}
	// Statistics pass through to the wrapped endpoint.
	if slow.Stats().BytesSent() != a.Stats().BytesSent() || a.Stats().MsgsSent() != 1 {
		t.Errorf("latency wrapper broke stats passthrough")
	}
	if got := WithLatency(a, 0); got != a {
		t.Errorf("WithLatency(conn, 0) = %v, want the conn unchanged", got)
	}
	_ = slow.Close()
	_ = b.Close()
}
