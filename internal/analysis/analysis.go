// Package analysis provides the closed-form results of "Uncheatable Grid
// Computing" (Du et al., ICDCS 2004): the cheat-success probability of
// Theorem 3 (Eq. 2), the required sample size of Eq. 3 (Fig. 2), the
// storage/computation tradeoff of Section 3.3, and the attack economics of
// the non-interactive scheme (Section 4.2, Eq. 5).
//
// The functions here are pure math; the experiment harness cross-checks them
// against Monte-Carlo simulation of the actual protocol.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Errors reported by this package.
var (
	// ErrBadRatio is returned for honesty ratios outside [0, 1].
	ErrBadRatio = errors.New("analysis: honesty ratio must be in [0, 1]")
	// ErrBadGuessProb is returned for guess probabilities outside [0, 1].
	ErrBadGuessProb = errors.New("analysis: guess probability must be in [0, 1]")
	// ErrBadEpsilon is returned for detection thresholds outside (0, 1).
	ErrBadEpsilon = errors.New("analysis: epsilon must be in (0, 1)")
	// ErrBadSamples is returned for non-positive sample counts.
	ErrBadSamples = errors.New("analysis: sample count must be >= 1")
	// ErrUnachievable is returned when no finite sample size reaches the
	// requested detection threshold (r + (1-r)q = 1).
	ErrUnachievable = errors.New("analysis: no finite sample size achieves epsilon")
)

// CheatSuccessProb returns Eq. 2 of Theorem 3: the probability that a
// participant with honesty ratio r survives m uniform samples when a guessed
// result is correct with probability q,
//
//	Pr = (r + (1-r)·q)^m.
func CheatSuccessProb(r, q float64, m int) (float64, error) {
	if err := validateRQ(r, q); err != nil {
		return 0, err
	}
	if m < 1 {
		return 0, fmt.Errorf("%w: got %d", ErrBadSamples, m)
	}
	return math.Pow(perSampleSurvival(r, q), float64(m)), nil
}

// DetectionProb returns 1 - CheatSuccessProb: the probability the supervisor
// catches the cheater.
func DetectionProb(r, q float64, m int) (float64, error) {
	p, err := CheatSuccessProb(r, q, m)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// RequiredSamples returns Eq. 3: the minimum sample count m such that the
// cheat-success probability stays below epsilon,
//
//	m ≥ log ε / log (r + (1-r)q).
//
// The paper's Fig. 2 plots this function for q = 0 and q = 0.5 at ε = 1e-4.
func RequiredSamples(epsilon, r, q float64) (int, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return 0, fmt.Errorf("%w: got %v", ErrBadEpsilon, epsilon)
	}
	if err := validateRQ(r, q); err != nil {
		return 0, err
	}
	s := perSampleSurvival(r, q)
	if s >= 1 {
		return 0, fmt.Errorf("%w: r=%v q=%v", ErrUnachievable, r, q)
	}
	if s <= 0 {
		return 1, nil // every sample catches the cheater
	}
	m := math.Log(epsilon) / math.Log(s)
	return int(math.Ceil(m)), nil
}

// perSampleSurvival is r + (1-r)q, the probability one sample fails to
// expose the cheater.
func perSampleSurvival(r, q float64) float64 {
	return r + (1-r)*q
}

func validateRQ(r, q float64) error {
	if !(r >= 0 && r <= 1) {
		return fmt.Errorf("%w: got %v", ErrBadRatio, r)
	}
	if !(q >= 0 && q <= 1) {
		return fmt.Errorf("%w: got %v", ErrBadGuessProb, q)
	}
	return nil
}

// RCO returns the relative computation overhead of Section 3.3 for a
// participant that stores S tree-node slots and answers m samples:
//
//	rco = m·2^ℓ / |D| = 2m / S.
//
// It is independent of the domain size — the paper's central storage
// observation.
func RCO(m int, storedNodes int) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("%w: got %d", ErrBadSamples, m)
	}
	if storedNodes < 2 {
		return 0, fmt.Errorf("analysis: stored node count must be >= 2, got %d", storedNodes)
	}
	return 2 * float64(m) / float64(storedNodes), nil
}

// StoredNodesFor returns S = 2^(H-ℓ+1), the node slots needed to store a
// height-H tree down to level H-ℓ.
func StoredNodesFor(height, ell int) (int, error) {
	if height < 0 || ell < 0 || ell > height {
		return 0, fmt.Errorf("analysis: need 0 <= ℓ <= H, got ℓ=%d H=%d", ell, height)
	}
	return 1 << (height - ell + 1), nil
}

// RebuildCost returns 2^ℓ, the number of f evaluations needed to rebuild one
// discarded subtree during a proof (Section 3.3).
func RebuildCost(ell int) (int64, error) {
	if ell < 0 || ell > 62 {
		return 0, fmt.Errorf("analysis: subtree height out of range: %d", ell)
	}
	return 1 << ell, nil
}

// ExpectedRerollAttempts returns 1/r^m, the expected number of tree rebuilds
// the Section 4.2 re-rolling attacker performs before all m self-derived
// samples land in D'. Returns +Inf for r = 0.
func ExpectedRerollAttempts(r float64, m int) (float64, error) {
	if !(r >= 0 && r <= 1) {
		return 0, fmt.Errorf("%w: got %v", ErrBadRatio, r)
	}
	if m < 1 {
		return 0, fmt.Errorf("%w: got %d", ErrBadSamples, m)
	}
	if r == 0 {
		return math.Inf(1), nil
	}
	return math.Pow(r, -float64(m)), nil
}

// AttackCost captures both sides of the Eq. 5 inequality in units of the
// base hash cost.
type AttackCost struct {
	// Cheating is the expected attack cost (1/r^m)·m·C_g, with C_g = k
	// base hashes per application of g.
	Cheating float64
	// Honest is the cost n·C_f of computing the whole task.
	Honest float64
}

// Uneconomical reports whether cheating costs at least as much as honest
// computation — the paper's condition for calling the scheme uncheatable.
func (c AttackCost) Uneconomical() bool { return c.Cheating >= c.Honest }

// RerollAttackCost evaluates Eq. 5 for a domain of n inputs where one f
// evaluation costs fCost base hashes and g applies the base hash k times.
func RerollAttackCost(n float64, fCost float64, r float64, m int, k int) (AttackCost, error) {
	if n <= 0 || fCost <= 0 || k < 1 {
		return AttackCost{}, fmt.Errorf("analysis: need n>0, fCost>0, k>=1 (n=%v fCost=%v k=%d)", n, fCost, k)
	}
	attempts, err := ExpectedRerollAttempts(r, m)
	if err != nil {
		return AttackCost{}, err
	}
	return AttackCost{
		Cheating: attempts * float64(m) * float64(k),
		Honest:   n * fCost,
	}, nil
}

// RequiredChainIterations returns the minimum k (base-hash iterations inside
// g ≡ hash^k) that satisfies Eq. 5,
//
//	(1/r^m)·m·k ≥ n·C_f  ⇒  k ≥ n·C_f·r^m / m,
//
// i.e. makes the expected re-rolling attack at least as expensive as honest
// computation. Returns 1 when even a single-iteration g already suffices.
func RequiredChainIterations(n float64, fCost float64, r float64, m int) (float64, error) {
	if n <= 0 || fCost <= 0 {
		return 0, fmt.Errorf("analysis: need n>0 and fCost>0 (n=%v fCost=%v)", n, fCost)
	}
	if !(r > 0 && r <= 1) {
		return 0, fmt.Errorf("%w: got %v (attack cost undefined at r=0)", ErrBadRatio, r)
	}
	if m < 1 {
		return 0, fmt.Errorf("%w: got %d", ErrBadSamples, m)
	}
	k := n * fCost * math.Pow(r, float64(m)) / float64(m)
	if k < 1 {
		return 1, nil
	}
	return math.Ceil(k), nil
}

// HonestChainOverhead returns the ratio between the honest participant's
// sample-generation cost (m·C_g) and its task cost (n·C_f) when k is chosen
// to exactly satisfy Eq. 5. Per Section 4.2 this ratio is about r^m, i.e.
// negligible for useful sample counts.
func HonestChainOverhead(n float64, fCost float64, r float64, m int) (float64, error) {
	k, err := RequiredChainIterations(n, fCost, r, m)
	if err != nil {
		return 0, err
	}
	return float64(m) * k / (n * fCost), nil
}

// NaiveCommunicationBytes estimates the per-participant upload of the naive
// sampling scheme: all n results of resultSize bytes each.
func NaiveCommunicationBytes(n int64, resultSize int64) int64 {
	return n * resultSize
}

// CBSCommunicationBytes estimates the per-participant upload of the CBS
// scheme: one commitment digest plus, per sample, the result and ⌈log2 n⌉
// sibling digests.
func CBSCommunicationBytes(n int64, resultSize, digestSize int64, m int64) int64 {
	if n < 1 {
		return 0
	}
	// height = ⌈log2 n⌉ via bit length; avoids overflow for n near 2^63.
	height := int64(bits.Len64(uint64(n - 1)))
	return digestSize + m*(resultSize+height*digestSize)
}
