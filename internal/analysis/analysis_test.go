package analysis

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestCheatSuccessProbKnownValues(t *testing.T) {
	tests := []struct {
		r, q float64
		m    int
		want float64
	}{
		// §4.2: m = 10, r = 0.5, q = 0 → 1 in 2^10.
		{r: 0.5, q: 0, m: 10, want: 1.0 / 1024},
		// Honest participant always "survives".
		{r: 1, q: 0, m: 50, want: 1},
		// Full cheater with coin-flip guesses: (0.5)^m.
		{r: 0, q: 0.5, m: 2, want: 0.25},
		// Full cheater with perfect guesses survives.
		{r: 0, q: 1, m: 10, want: 1},
		// Intro's motivating case: half the work, q=0, one sample → 1/2.
		{r: 0.5, q: 0, m: 1, want: 0.5},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("r=%g,q=%g,m=%d", tt.r, tt.q, tt.m), func(t *testing.T) {
			got, err := CheatSuccessProb(tt.r, tt.q, tt.m)
			if err != nil {
				t.Fatalf("CheatSuccessProb: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCheatSuccessProbValidation(t *testing.T) {
	if _, err := CheatSuccessProb(-0.1, 0, 1); !errors.Is(err, ErrBadRatio) {
		t.Errorf("r=-0.1: err = %v, want ErrBadRatio", err)
	}
	if _, err := CheatSuccessProb(0.5, 2, 1); !errors.Is(err, ErrBadGuessProb) {
		t.Errorf("q=2: err = %v, want ErrBadGuessProb", err)
	}
	if _, err := CheatSuccessProb(0.5, 0.5, 0); !errors.Is(err, ErrBadSamples) {
		t.Errorf("m=0: err = %v, want ErrBadSamples", err)
	}
	if _, err := CheatSuccessProb(math.NaN(), 0, 1); !errors.Is(err, ErrBadRatio) {
		t.Errorf("r=NaN: err = %v, want ErrBadRatio", err)
	}
}

func TestDetectionProbComplements(t *testing.T) {
	p, err := CheatSuccessProb(0.7, 0.2, 20)
	if err != nil {
		t.Fatalf("CheatSuccessProb: %v", err)
	}
	d, err := DetectionProb(0.7, 0.2, 20)
	if err != nil {
		t.Fatalf("DetectionProb: %v", err)
	}
	if math.Abs(p+d-1) > 1e-15 {
		t.Fatalf("p + d = %v, want 1", p+d)
	}
}

func TestRequiredSamplesPaperSpotValues(t *testing.T) {
	// Section 3.2: with ε = 1e-4 and r = 0.5, the paper reports m = 33 for
	// q = 0.5 and m = 14 for q ≈ 0. These two points anchor Fig. 2.
	tests := []struct {
		r, q float64
		want int
	}{
		{r: 0.5, q: 0.5, want: 33},
		{r: 0.5, q: 0, want: 14},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("r=%g,q=%g", tt.r, tt.q), func(t *testing.T) {
			got, err := RequiredSamples(1e-4, tt.r, tt.q)
			if err != nil {
				t.Fatalf("RequiredSamples: %v", err)
			}
			if got != tt.want {
				t.Fatalf("RequiredSamples = %d, want %d (paper §3.2)", got, tt.want)
			}
		})
	}
}

func TestRequiredSamplesAchievesEpsilon(t *testing.T) {
	// The returned m must push the success probability below ε, and m-1
	// must not (minimality).
	for _, r := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		for _, q := range []float64{0, 0.25, 0.5} {
			const eps = 1e-4
			m, err := RequiredSamples(eps, r, q)
			if err != nil {
				t.Fatalf("RequiredSamples(r=%v,q=%v): %v", r, q, err)
			}
			at, err := CheatSuccessProb(r, q, m)
			if err != nil {
				t.Fatalf("CheatSuccessProb: %v", err)
			}
			// Allow a hair of float slack: at r=0.1, q=0 the bound holds
			// with exact equality in real arithmetic.
			if at > eps*(1+1e-9) {
				t.Errorf("r=%v q=%v: Pr at m=%d is %v > ε", r, q, m, at)
			}
			if m > 1 {
				before, err := CheatSuccessProb(r, q, m-1)
				if err != nil {
					t.Fatalf("CheatSuccessProb: %v", err)
				}
				if before <= eps {
					t.Errorf("r=%v q=%v: m=%d not minimal (m-1 already ≤ ε)", r, q, m)
				}
			}
		}
	}
}

func TestRequiredSamplesMonotoneInR(t *testing.T) {
	// Fig. 2 shape: higher honesty ratios need more samples to catch.
	prev := 0
	for _, r := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		m, err := RequiredSamples(1e-4, r, 0)
		if err != nil {
			t.Fatalf("RequiredSamples(r=%v): %v", r, err)
		}
		if m < prev {
			t.Fatalf("sample size not monotone: m(%v)=%d < previous %d", r, m, prev)
		}
		prev = m
	}
}

func TestRequiredSamplesQZeroVsHalf(t *testing.T) {
	// Fig. 2: the q=0.5 curve dominates the q=0 curve everywhere.
	for _, r := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m0, err := RequiredSamples(1e-4, r, 0)
		if err != nil {
			t.Fatalf("RequiredSamples: %v", err)
		}
		mHalf, err := RequiredSamples(1e-4, r, 0.5)
		if err != nil {
			t.Fatalf("RequiredSamples: %v", err)
		}
		if mHalf <= m0 {
			t.Errorf("r=%v: m(q=0.5)=%d not above m(q=0)=%d", r, mHalf, m0)
		}
	}
}

func TestRequiredSamplesEdges(t *testing.T) {
	if _, err := RequiredSamples(0, 0.5, 0); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("eps=0: err = %v, want ErrBadEpsilon", err)
	}
	if _, err := RequiredSamples(1, 0.5, 0); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("eps=1: err = %v, want ErrBadEpsilon", err)
	}
	if _, err := RequiredSamples(1e-4, 1, 0); !errors.Is(err, ErrUnachievable) {
		t.Errorf("r=1: err = %v, want ErrUnachievable", err)
	}
	if _, err := RequiredSamples(1e-4, 0.5, 1); !errors.Is(err, ErrUnachievable) {
		t.Errorf("q=1: err = %v, want ErrUnachievable", err)
	}
	m, err := RequiredSamples(1e-4, 0, 0)
	if err != nil || m != 1 {
		t.Errorf("r=0,q=0: (m, err) = (%d, %v), want (1, nil)", m, err)
	}
}

func TestRCOPaperSpotValue(t *testing.T) {
	// Section 3.3: m = 64 with S = 2^32 stored slots gives rco = 2^-25.
	got, err := RCO(64, 1<<32)
	if err != nil {
		t.Fatalf("RCO: %v", err)
	}
	if want := math.Pow(2, -25); math.Abs(got-want) > 1e-18 {
		t.Fatalf("RCO = %v, want 2^-25 = %v", got, want)
	}
}

func TestRCOFormulaConsistency(t *testing.T) {
	// rco = m·2^ℓ/2^H must equal 2m/S with S = 2^(H-ℓ+1).
	const height = 20
	for ell := 0; ell <= height; ell++ {
		stored, err := StoredNodesFor(height, ell)
		if err != nil {
			t.Fatalf("StoredNodesFor: %v", err)
		}
		rebuild, err := RebuildCost(ell)
		if err != nil {
			t.Fatalf("RebuildCost: %v", err)
		}
		const m = 16
		direct := float64(m) * float64(rebuild) / float64(int64(1)<<height)
		viaS, err := RCO(m, stored)
		if err != nil {
			t.Fatalf("RCO: %v", err)
		}
		if math.Abs(direct-viaS) > 1e-15 {
			t.Fatalf("ell=%d: m·2^ℓ/2^H = %v but 2m/S = %v", ell, direct, viaS)
		}
	}
}

func TestRCOErrors(t *testing.T) {
	if _, err := RCO(0, 4); !errors.Is(err, ErrBadSamples) {
		t.Errorf("m=0: err = %v, want ErrBadSamples", err)
	}
	if _, err := RCO(1, 1); err == nil {
		t.Error("storedNodes=1 accepted")
	}
	if _, err := StoredNodesFor(4, 5); err == nil {
		t.Error("ell>H accepted")
	}
	if _, err := RebuildCost(-1); err == nil {
		t.Error("negative ell accepted")
	}
}

func TestExpectedRerollAttempts(t *testing.T) {
	got, err := ExpectedRerollAttempts(0.5, 10)
	if err != nil {
		t.Fatalf("ExpectedRerollAttempts: %v", err)
	}
	if got != 1024 {
		t.Fatalf("r=0.5,m=10: attempts = %v, want 1024", got)
	}
	inf, err := ExpectedRerollAttempts(0, 5)
	if err != nil {
		t.Fatalf("ExpectedRerollAttempts: %v", err)
	}
	if !math.IsInf(inf, 1) {
		t.Fatalf("r=0: attempts = %v, want +Inf", inf)
	}
	one, err := ExpectedRerollAttempts(1, 5)
	if err != nil || one != 1 {
		t.Fatalf("r=1: (attempts, err) = (%v, %v), want (1, nil)", one, err)
	}
}

func TestRerollAttackCostEquationFive(t *testing.T) {
	// With k from RequiredChainIterations, Eq. 5 must hold with equality up
	// to the ceiling; with k-1 it must fail (when k > 1).
	const (
		n     = 1 << 20
		fCost = 8.0
		r     = 0.9
		m     = 16
	)
	k, err := RequiredChainIterations(n, fCost, r, m)
	if err != nil {
		t.Fatalf("RequiredChainIterations: %v", err)
	}
	if k < 2 {
		t.Fatalf("test parameters too weak: k = %v", k)
	}
	cost, err := RerollAttackCost(n, fCost, r, m, int(k))
	if err != nil {
		t.Fatalf("RerollAttackCost: %v", err)
	}
	if !cost.Uneconomical() {
		t.Fatalf("k=%v: cheating %v < honest %v; Eq. 5 violated", k, cost.Cheating, cost.Honest)
	}
	below, err := RerollAttackCost(n, fCost, r, m, int(k)-1)
	if err != nil {
		t.Fatalf("RerollAttackCost: %v", err)
	}
	if below.Uneconomical() {
		t.Fatalf("k-1=%v already uneconomical; k not minimal", k-1)
	}
}

func TestRequiredChainIterationsFloorsAtOne(t *testing.T) {
	// For tiny r^m the plain hash is already expensive enough.
	k, err := RequiredChainIterations(1<<20, 1, 0.5, 64)
	if err != nil {
		t.Fatalf("RequiredChainIterations: %v", err)
	}
	if k != 1 {
		t.Fatalf("k = %v, want 1", k)
	}
}

func TestHonestChainOverheadIsAboutRToM(t *testing.T) {
	// Section 4.2: with k sized to Eq. 5 equality, the honest participant's
	// extra cost ratio is about r^m.
	const (
		n     = 1 << 24
		fCost = 16.0
		r     = 0.95
		m     = 32
	)
	overhead, err := HonestChainOverhead(n, fCost, r, m)
	if err != nil {
		t.Fatalf("HonestChainOverhead: %v", err)
	}
	want := math.Pow(r, m)
	// The ceiling on k adds at most one part in k; allow 10% slack.
	if overhead < want*0.99 || overhead > want*1.1 {
		t.Fatalf("overhead = %v, want ≈ r^m = %v", overhead, want)
	}
	if overhead > 0.21 {
		t.Fatalf("overhead %v not negligible; the paper's claim fails", overhead)
	}
}

func TestCommunicationModels(t *testing.T) {
	// Naive is linear, CBS logarithmic — the headline comparison.
	const resultSize, digestSize, m = 32, 32, 50
	naive1k := NaiveCommunicationBytes(1<<10, resultSize)
	naive1M := NaiveCommunicationBytes(1<<20, resultSize)
	if naive1M != 1024*naive1k {
		t.Fatalf("naive cost not linear: %d vs %d", naive1M, naive1k)
	}
	cbs1k := CBSCommunicationBytes(1<<10, resultSize, digestSize, m)
	cbs1M := CBSCommunicationBytes(1<<20, resultSize, digestSize, m)
	if cbs1M >= 2*cbs1k {
		t.Fatalf("CBS cost not logarithmic: %d vs %d", cbs1M, cbs1k)
	}
	// Exact model: digest + m·(result + H·digest).
	if want := int64(digestSize + m*(resultSize+10*digestSize)); cbs1k != want {
		t.Fatalf("CBS(2^10) = %d, want %d", cbs1k, want)
	}
}

func TestPaperHeadline64BitTask(t *testing.T) {
	// Section 3: a 2^64-input task under naive sampling ships ~16 million
	// terabytes back to the supervisor (at 1 byte per result, 2^64 B =
	// 16 EiB ≈ 16.8M TB); CBS ships kilobytes per participant.
	naive := NaiveCommunicationBytes(math.MaxInt64, 1) // 2^63-1 as int64 stand-in
	if naive < (1<<63)-1 {
		t.Fatalf("naive bytes overflowed: %d", naive)
	}
	cbs := CBSCommunicationBytes(math.MaxInt64, 32, 32, 50)
	if cbs > 200_000 {
		t.Fatalf("CBS bytes for a 2^63 task = %d, want under 200KB", cbs)
	}
}

func TestCheatSuccessProbQuickMonotonicity(t *testing.T) {
	// More samples never help the cheater; higher r never hurts them.
	f := func(rSeed, qSeed uint8, mSeed uint8) bool {
		r := float64(rSeed%100) / 100
		q := float64(qSeed%100) / 100
		m := int(mSeed%50) + 1
		p1, err1 := CheatSuccessProb(r, q, m)
		p2, err2 := CheatSuccessProb(r, q, m+1)
		if err1 != nil || err2 != nil {
			return false
		}
		if p2 > p1+1e-15 {
			return false
		}
		p3, err3 := CheatSuccessProb(math.Min(r+0.01, 1), q, m)
		if err3 != nil {
			return false
		}
		return p3 >= p1-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
