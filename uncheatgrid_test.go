package uncheatgrid_test

import (
	"errors"
	"testing"

	"uncheatgrid"
)

// TestPublicAPIRoundTrip exercises the facade exactly as the README's
// quickstart does: commit, challenge, prove, verify.
func TestPublicAPIRoundTrip(t *testing.T) {
	f := uncheatgrid.NewSyntheticWorkload(1, 2, 64)
	const n = 256

	m, err := uncheatgrid.RequiredSamples(1e-4, 0.5, f.GuessProb())
	if err != nil {
		t.Fatalf("RequiredSamples: %v", err)
	}
	if m != 14 {
		t.Fatalf("m = %d, want 14 (paper §3.2)", m)
	}

	prover, err := uncheatgrid.NewProver(n, func(i uint64) []byte { return f.Eval(i) })
	if err != nil {
		t.Fatalf("NewProver: %v", err)
	}
	verifier, err := uncheatgrid.NewVerifier(prover.Commitment())
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	challenge, err := verifier.Challenge(m)
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	response, err := prover.Respond(challenge.Indices)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	check := uncheatgrid.RecomputeCheck(func(i uint64) []byte { return f.Eval(i) })
	if err := verifier.Verify(challenge, response, check); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestPublicAPICheaterDetected drives a cheating producer through the
// facade and checks the exported error taxonomy.
func TestPublicAPICheaterDetected(t *testing.T) {
	f := uncheatgrid.NewSyntheticWorkload(2, 1, 64)
	producer, err := uncheatgrid.NewSemiHonest(f, 0.2, 3)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	prover, err := uncheatgrid.NewProver(128, producer.Claim)
	if err != nil {
		t.Fatalf("NewProver: %v", err)
	}
	verifier, err := uncheatgrid.NewVerifier(prover.Commitment())
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	challenge, err := verifier.Challenge(20)
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	response, err := prover.Respond(challenge.Indices)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	err = verifier.Verify(challenge, response,
		uncheatgrid.RecomputeCheck(func(i uint64) []byte { return f.Eval(i) }))
	var cheatErr *uncheatgrid.CheatError
	if !errors.As(err, &cheatErr) {
		t.Fatalf("err = %v, want *CheatError", err)
	}
	if !errors.Is(err, uncheatgrid.ErrWrongOutput) && !errors.Is(err, uncheatgrid.ErrCommitmentMismatch) {
		t.Fatalf("err = %v, want one of the exported conviction classes", err)
	}
}

// TestPublicAPINonInteractive runs NI-CBS through the facade.
func TestPublicAPINonInteractive(t *testing.T) {
	f := uncheatgrid.NewSyntheticWorkload(3, 1, 64)
	chain, err := uncheatgrid.NewHashChain(2)
	if err != nil {
		t.Fatalf("NewHashChain: %v", err)
	}
	prover, err := uncheatgrid.NewProver(64, func(i uint64) []byte { return f.Eval(i) })
	if err != nil {
		t.Fatalf("NewProver: %v", err)
	}
	response, err := prover.RespondNonInteractive(chain, 8)
	if err != nil {
		t.Fatalf("RespondNonInteractive: %v", err)
	}
	verifier, err := uncheatgrid.NewVerifier(prover.Commitment())
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	err = verifier.VerifyNonInteractive(chain, 8, response,
		uncheatgrid.RecomputeCheck(func(i uint64) []byte { return f.Eval(i) }))
	if err != nil {
		t.Fatalf("VerifyNonInteractive: %v", err)
	}
}

// TestPublicAPISimulation runs a whole population through the facade.
func TestPublicAPISimulation(t *testing.T) {
	report, err := uncheatgrid.RunSim(uncheatgrid.SimConfig{
		Spec:         uncheatgrid.SchemeSpec{Kind: uncheatgrid.SchemeCBS, M: 20},
		Workload:     "synthetic",
		Seed:         1,
		TaskSize:     128,
		Tasks:        6,
		Honest:       2,
		SemiHonest:   2,
		HonestyRatio: 0.3,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if report.CheatersDetected != 2 || report.HonestAccused != 0 {
		t.Fatalf("detection %d/%d, accused %d",
			report.CheatersDetected, report.CheatersTotal, report.HonestAccused)
	}
}

// TestPublicAPIWorkloadRegistry spot-checks the registry surface.
func TestPublicAPIWorkloadRegistry(t *testing.T) {
	names := uncheatgrid.WorkloadNames()
	if len(names) != 6 {
		t.Fatalf("WorkloadNames() = %v", names)
	}
	for _, name := range names {
		f, err := uncheatgrid.NewWorkload(name, 1)
		if err != nil {
			t.Fatalf("NewWorkload(%q): %v", name, err)
		}
		counted := uncheatgrid.CountWorkload(f)
		counted.Eval(0)
		if counted.Evals() != 1 {
			t.Fatalf("counter broken for %q", name)
		}
	}
}
