package uncheatgrid

import (
	"os/exec"
	"testing"
)

// TestExamplesSmoke compiles and runs every example program end to end.
// The examples exercise the public API the way a new user would, so a
// regression anywhere on the re-exported surface fails tier-1 here rather
// than in a reader's terminal.
func TestExamplesSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, name := range []string{"quickstart", "passwordsearch", "drugscreen", "setisearch"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}

// TestGridsimSmoke builds and runs the gridsim binary with a tiny
// concurrent simulation — the CLI's own tests cover flags in depth; this
// catches main()-level wiring regressions.
func TestGridsimSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "run", "./cmd/gridsim",
		"-tasks", "2", "-tasksize", "128", "-honest", "2", "-semihonest", "0",
		"-m", "5", "-workers", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/gridsim: %v\n%s", err, out)
	}
}
