// Command gridlint runs the project's static analyzer suite (internal/lint)
// over the module and exits non-zero on any finding. CI runs it as a hard
// gate; run it locally with
//
//	go run ./cmd/gridlint ./...
//
// Flags:
//
//	-ci path    CI workflow file checked for fuzz-target registration
//	            (default .github/workflows/ci.yml under the module root)
//	-list       print the analyzer suite and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"uncheatgrid/internal/lint"
)

func main() {
	ciPath := flag.String("ci", "", "CI workflow file for fuzz-target registration checks")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root := moduleRoot(cwd)

	cfg := lint.RunConfig{Config: map[string]string{}}
	workflow := *ciPath
	if workflow == "" {
		workflow = filepath.Join(root, ".github", "workflows", "ci.yml")
	}
	if data, err := os.ReadFile(workflow); err == nil {
		cfg.Config["ci-workflow"] = string(data)
	} else if *ciPath != "" {
		fatal(fmt.Errorf("read %s: %v", *ciPath, err))
	}

	patterns := flag.Args()
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(pkgs, cfg)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(relativize(root, d.String()))
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "gridlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// moduleRoot resolves the enclosing module's directory; cwd on failure.
func moduleRoot(cwd string) string {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return cwd
	}
	if dir := strings.TrimSpace(string(out)); dir != "" {
		return dir
	}
	return cwd
}

// relativize shortens absolute fixture paths in a diagnostic line for
// stable, readable output.
func relativize(root, line string) string {
	return strings.ReplaceAll(line, root+string(filepath.Separator), "")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridlint:", err)
	os.Exit(1)
}
