// Command gridsim runs a configurable grid-computing simulation: a
// supervisor distributing tasks over a mixed population of honest and
// cheating participants, verified with any of the implemented schemes
// (cbs, ni-cbs, naive, double-check, ringer), and prints a run report.
//
// Example:
//
//	gridsim -scheme cbs -workload password -tasks 16 -tasksize 4096 \
//	        -honest 4 -semihonest 4 -ratio 0.5 -m 33
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"

	"uncheatgrid/internal/analysis"
	"uncheatgrid/internal/grid"
	"uncheatgrid/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gridsim", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "cbs", "verification scheme: cbs|ni-cbs|naive|double-check|ringer")
		wlName     = fs.String("workload", "synthetic", fmt.Sprintf("workload: %v", workload.Names()))
		seed       = fs.Uint64("seed", 1, "workload and scheduling seed")
		tasks      = fs.Int("tasks", 8, "number of tasks to assign")
		taskSize   = fs.Int("tasksize", 1024, "inputs per task (|D|)")
		honest     = fs.Int("honest", 3, "honest participants")
		semiHonest = fs.Int("semihonest", 2, "semi-honest cheaters")
		malicious  = fs.Int("malicious", 0, "malicious (report-corrupting) participants")
		ratio      = fs.Float64("ratio", 0.5, "honesty ratio r of the semi-honest cheaters")
		corrupt    = fs.Float64("corrupt", 0.5, "report-corruption probability of malicious participants")
		m          = fs.Int("m", 0, "sample count (0 = derive from -epsilon via Eq. 3)")
		epsilon    = fs.Float64("epsilon", 1e-4, "target cheat-success bound when deriving m")
		chainIters = fs.Int("chainiters", 4, "hash iterations in g (NI-CBS)")
		subtree    = fs.Int("subtree", 0, "storage-bounded prover subtree height ℓ (CBS/NI-CBS)")
		replicas   = fs.Int("replicas", 3, "double-check group size")
		blacklist  = fs.Bool("blacklist", false, "stop assigning to participants after a rejection")
		crossCheck = fs.Bool("crosscheck", true, "cross-check screener reports on sampled inputs")
		workers    = fs.Int("workers", runtime.NumCPU(), "concurrent verification workers (1 = serial)")
		pipeline   = fs.Int("pipeline", 0, "pipelined session window per connection (0 = per-task dialogue)")
		broker     = fs.Bool("broker", false, "route all traffic through a GRACE-style broker hub (identity-routed relay with relay-hop batching)")
		routes     = fs.Int("routes", 0, "total multiplexed supervisor routes (0 = one per participant; needs -broker and -pipeline)")
		drop       = fs.Float64("drop", 0, "probability a frame silently vanishes in transit (needs -pipeline)")
		garble     = fs.Float64("garble", 0, "probability a frame has one bit flipped in transit (needs -pipeline)")
		reconnect  = fs.Int("reconnect", 0, "max replacement connections per participant under faults (0 = default 8)")
		faultWait  = fs.Duration("faultwait", 0, "receive watchdog that converts dropped frames into reconnects (0 = default 2s)")
		stream     = fs.Bool("stream", false, "long-horizon streaming mode: tasks drawn lazily from a source under bounded look-ahead (needs -pipeline)")
		windowT    = fs.Int("windowtasks", 0, "tasks per rolling commitment window (needs -stream; 0 = no window commitments)")
		windowM    = fs.Int("windowsamples", 0, "membership proofs sampled per window commit (needs -windowtasks)")
		checkEvery = fs.Int("checkevery", 0, "tasks per durable checkpoint segment (needs -stream and -checkpoint)")
		checkDir   = fs.String("checkpoint", "", "directory for durable supervisor/participant checkpoints")
		killAfter  = fs.Int("killafter", 0, "inject a crash after this many settled tasks and restart from the last checkpoint (needs -checkevery)")
		killTarget = fs.String("killtarget", "", "what the -killafter crash takes down: supervisor (default, whole attempt) or participant (pool restored via its checkpoints while the supervisor survives)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	kind, err := grid.ParseScheme(*schemeName)
	if err != nil {
		return err
	}
	samples := *m
	if samples == 0 {
		// Eq. 3 with the workload's own guessing probability q.
		f, err := workload.New(*wlName, *seed)
		if err != nil {
			return err
		}
		samples, err = analysis.RequiredSamples(*epsilon, *ratio, f.GuessProb())
		if err != nil {
			return fmt.Errorf("derive m from ε: %w", err)
		}
		fmt.Fprintf(w, "m = %d derived from Eq. 3 (ε=%g, r=%g, q=%g)\n",
			samples, *epsilon, *ratio, f.GuessProb())
	}

	report, err := grid.RunSim(grid.SimConfig{
		Spec: grid.SchemeSpec{
			Kind:          kind,
			M:             samples,
			ChainIters:    *chainIters,
			SubtreeHeight: *subtree,
			WindowTasks:   *windowT,
			WindowSamples: *windowM,
		},
		Workload:          *wlName,
		Seed:              *seed,
		TaskSize:          *taskSize,
		Tasks:             *tasks,
		Honest:            *honest,
		SemiHonest:        *semiHonest,
		Malicious:         *malicious,
		HonestyRatio:      *ratio,
		CorruptProb:       *corrupt,
		Replicas:          *replicas,
		Blacklist:         *blacklist,
		CrossCheckReports: *crossCheck,
		Workers:           *workers,
		PipelineWindow:    *pipeline,
		Broker:            *broker,
		Routes:            *routes,
		DropProb:          *drop,
		GarbleProb:        *garble,
		ReconnectLimit:    *reconnect,
		FaultRecvTimeout:  *faultWait,
		Stream:            *stream,
		CheckpointEvery:   *checkEvery,
		CheckpointDir:     *checkDir,
		KillAfter:         *killAfter,
		KillTarget:        *killTarget,
	})
	if err != nil {
		return err
	}
	printReport(w, report)
	return nil
}

func printReport(w io.Writer, report *grid.SimReport) {
	mode := ""
	if report.PipelineWindow > 0 {
		mode = fmt.Sprintf(" pipeline=%d", report.PipelineWindow)
	}
	if report.Brokered {
		mode += " broker"
	}
	fmt.Fprintf(w, "scheme=%s%s tasks=%d detection=%d/%d honest-accused=%d\n",
		report.Scheme, mode, report.TasksAssigned,
		report.CheatersDetected, report.CheatersTotal, report.HonestAccused)
	fmt.Fprintf(w, "supervisor: sent=%dB recv=%dB verify-evals=%d\n",
		report.SupervisorBytesSent, report.SupervisorBytesRecv, report.SupervisorEvals)
	if report.WindowsSettled > 0 || report.WindowsPending > 0 || report.WindowViolations > 0 {
		fmt.Fprintf(w, "windows: settled=%d violations=%d pending-tasks=%d\n",
			report.WindowsSettled, report.WindowViolations, report.WindowsPending)
	}
	if report.Brokered {
		fmt.Fprintf(w, "broker: relayed=%d frames (%d B)\n",
			report.BrokerRelayedMsgs, report.BrokerRelayedBytes)
		if report.BrokerMuxLinks > 0 {
			fmt.Fprintf(w, "broker mux: links=%d routes=%d control out=%d frames (%d B) in=%d frames (%d B) envelope-overhead in=%dB out=%dB\n",
				report.BrokerMuxLinks, report.BrokerRoutesOpened,
				report.BrokerControlMsgs, report.BrokerControlBytes,
				report.BrokerControlInMsgs, report.BrokerControlInBytes,
				report.BrokerMuxOverheadIngress, report.BrokerMuxOverheadEgress)
		}
		if len(report.BrokerRoutes) > 0 {
			names := make([]string, 0, len(report.BrokerRoutes))
			for name := range report.BrokerRoutes {
				names = append(names, name)
			}
			sort.Strings(names)
			rt := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(rt, "route\tbinds\tto-worker\tto-supervisor\tcorrupt")
			for _, name := range names {
				rs := report.BrokerRoutes[name]
				fmt.Fprintf(rt, "%s\t%d\t%d msgs %dB\t%d msgs %dB\t%d\n",
					name, rs.Binds,
					rs.ToWorker.EgressMsgs, rs.ToWorker.EgressBytes,
					rs.ToSupervisor.EgressMsgs, rs.ToSupervisor.EgressBytes,
					rs.CorruptFrames)
			}
			_ = rt.Flush()
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "participant\tbehavior\ttasks\taccepted\trejected\tf-evals\tsentB\trecvB\treconns\tblacklisted")
	for _, p := range report.Participants {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			p.ID, p.Behavior, p.Tasks, p.Accepted, p.Rejected,
			p.FEvals, p.BytesSent, p.BytesRecv, p.Reconnects, p.Blacklisted)
	}
	_ = tw.Flush()

	if len(report.Reports) > 0 {
		fmt.Fprintf(w, "screened results (%d):\n", len(report.Reports))
		limit := len(report.Reports)
		if limit > 10 {
			limit = 10
		}
		for _, rep := range report.Reports[:limit] {
			fmt.Fprintf(w, "  x=%d: %s\n", rep.X, rep.S)
		}
		if len(report.Reports) > limit {
			fmt.Fprintf(w, "  … and %d more\n", len(report.Reports)-limit)
		}
	}
}
