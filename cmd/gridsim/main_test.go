package main

import (
	"bytes"
	"strings"
	"testing"
)

// runGridsim invokes the CLI entry point with the given flags and returns
// its output.
func runGridsim(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, args); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestRunSmallSimulation(t *testing.T) {
	out := runGridsim(t,
		"-scheme", "cbs", "-tasks", "2", "-tasksize", "256",
		"-honest", "1", "-semihonest", "1", "-m", "20", "-workers", "2")
	for _, want := range []string{"scheme=cbs", "supervisor:", "honest-0", "semihonest-0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "detection=1/1") {
		t.Errorf("semi-honest cheater not detected at m=20:\n%s", out)
	}
}

func TestRunDerivesSampleCountFromEpsilon(t *testing.T) {
	out := runGridsim(t,
		"-scheme", "cbs", "-tasks", "1", "-tasksize", "128",
		"-honest", "1", "-semihonest", "0", "-m", "0", "-epsilon", "1e-4")
	if !strings.Contains(out, "derived from Eq. 3") {
		t.Errorf("missing Eq. 3 derivation note:\n%s", out)
	}
}

func TestRunAllSchemes(t *testing.T) {
	schemes := map[string][]string{
		"cbs":          nil,
		"ni-cbs":       nil,
		"naive":        nil,
		"ringer":       nil,
		"double-check": {"-honest", "3", "-replicas", "3"},
	}
	for scheme, extra := range schemes {
		t.Run(scheme, func(t *testing.T) {
			args := append([]string{
				"-scheme", scheme, "-tasks", "1", "-tasksize", "128",
				"-honest", "3", "-semihonest", "0", "-m", "5",
			}, extra...)
			out := runGridsim(t, args...)
			if !strings.Contains(out, "scheme="+scheme) {
				t.Errorf("output missing scheme header:\n%s", out)
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-scheme", "nope"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run(&buf, []string{"-tasks", "0"}); err == nil {
		t.Error("zero tasks accepted")
	}
	if err := run(&buf, []string{"-workers", "-2"}); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestRunFaultySimulation(t *testing.T) {
	// Garbles are detected by the batch checksum and recovered by
	// reconnect-and-resume; the run must converge with every task assigned
	// and the cheater still detected. A single participant pins the
	// task→participant pairing, making detection deterministic.
	out := runGridsim(t,
		"-scheme", "cbs", "-tasks", "4", "-tasksize", "128",
		"-honest", "0", "-semihonest", "1", "-m", "20", "-pipeline", "2",
		"-garble", "0.1", "-drop", "0.02", "-reconnect", "100", "-faultwait", "250ms")
	if !strings.Contains(out, "tasks=4") {
		t.Errorf("faulty run lost tasks:\n%s", out)
	}
	if !strings.Contains(out, "detection=1/1") {
		t.Errorf("cheater not detected under faults:\n%s", out)
	}
	if err := run(&bytes.Buffer{}, []string{"-drop", "0.5"}); err == nil {
		t.Error("faults without -pipeline accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"-drop", "1.5", "-pipeline", "2"}); err == nil {
		t.Error("out-of-range drop probability accepted")
	}
}

func TestRunPipelinedSimulation(t *testing.T) {
	// A single (cheating) participant makes detection deterministic even
	// under work stealing: every task lands on it.
	out := runGridsim(t,
		"-scheme", "cbs", "-tasks", "6", "-tasksize", "256",
		"-honest", "0", "-semihonest", "1", "-m", "20", "-pipeline", "4")
	if !strings.Contains(out, "scheme=cbs pipeline=4") {
		t.Errorf("report header missing pipeline mode:\n%s", out)
	}
	if !strings.Contains(out, "detection=1/1") {
		t.Errorf("cheater not detected under pipelining:\n%s", out)
	}
	if err := run(&bytes.Buffer{}, []string{"-pipeline", "-1"}); err == nil {
		t.Error("negative pipeline window accepted")
	}
}

func TestRunBrokeredFaultySimulation(t *testing.T) {
	// -broker routes everything through the hub; with faults on the
	// supervisor↔hub leg, redials are re-bound to the same worker and the
	// run converges with nothing lost and the cheater still detected.
	out := runGridsim(t,
		"-scheme", "cbs", "-tasks", "4", "-tasksize", "128",
		"-honest", "0", "-semihonest", "1", "-m", "20", "-pipeline", "2",
		"-broker", "-garble", "0.1", "-drop", "0.02",
		"-reconnect", "100", "-faultwait", "250ms")
	if !strings.Contains(out, "scheme=cbs pipeline=2 broker") {
		t.Errorf("report header missing broker mode:\n%s", out)
	}
	if !strings.Contains(out, "tasks=4") {
		t.Errorf("brokered faulty run lost tasks:\n%s", out)
	}
	if !strings.Contains(out, "detection=1/1") {
		t.Errorf("cheater not detected through the broker:\n%s", out)
	}
	if !strings.Contains(out, "broker: relayed=") {
		t.Errorf("report missing broker relay line:\n%s", out)
	}
}

func TestRunBrokeredReplicatedSimulation(t *testing.T) {
	// -broker composes with the replicated pipelined double-check mode.
	out := runGridsim(t,
		"-scheme", "double-check", "-replicas", "3", "-tasks", "3",
		"-tasksize", "128", "-honest", "3", "-semihonest", "0", "-m", "1",
		"-pipeline", "3", "-broker")
	if !strings.Contains(out, "scheme=double-check pipeline=3 broker") {
		t.Errorf("report header missing broker mode:\n%s", out)
	}
	if !strings.Contains(out, "tasks=9") {
		t.Errorf("brokered replicated run lost executions:\n%s", out)
	}
	if !strings.Contains(out, "honest-accused=0") {
		t.Errorf("honest replicas accused through the broker:\n%s", out)
	}
}

func TestRunReplicatedPipelinedFaultySimulation(t *testing.T) {
	// -pipeline now composes with -scheme double-check and the fault flags:
	// replica uploads pipeline inside each connection's window, comparisons
	// meet at cross-connection barriers, and faults are recovered by
	// reconnect-and-resume. All honest: every replica execution must be
	// assigned and accepted.
	out := runGridsim(t,
		"-scheme", "double-check", "-replicas", "3", "-tasks", "4",
		"-tasksize", "128", "-honest", "3", "-semihonest", "0", "-m", "1",
		"-pipeline", "3", "-garble", "0.05", "-drop", "0.01",
		"-reconnect", "100", "-faultwait", "250ms")
	if !strings.Contains(out, "scheme=double-check pipeline=3") {
		t.Errorf("report header missing replicated pipeline mode:\n%s", out)
	}
	// 4 tasks x 3 replicas = 12 executions, none lost to faults.
	if !strings.Contains(out, "tasks=12") {
		t.Errorf("replicated faulty run lost executions:\n%s", out)
	}
	if !strings.Contains(out, "honest-accused=0") {
		t.Errorf("honest replicas accused under faults:\n%s", out)
	}
}

func TestRunStreamKillTargetParticipant(t *testing.T) {
	// -killtarget participant crashes the pool mid-segment; the surviving
	// supervisor restores it from the durable checkpoints and the run still
	// settles every task and window with the cheater detected.
	args := []string{
		"-scheme", "cbs", "-tasks", "12", "-tasksize", "128",
		"-honest", "1", "-semihonest", "1", "-m", "20", "-pipeline", "2",
		"-stream", "-windowtasks", "4", "-windowsamples", "2",
		"-checkevery", "4", "-checkpoint", t.TempDir(),
		"-killafter", "6", "-killtarget", "participant",
	}
	out := runGridsim(t, args...)
	if !strings.Contains(out, "tasks=12") {
		t.Errorf("participant-crash stream run lost tasks:\n%s", out)
	}
	if !strings.Contains(out, "detection=1/1") {
		t.Errorf("cheater not detected across the participant crash:\n%s", out)
	}
	// Windows are per participant link: 6 tasks each under WindowTasks=4
	// settles one window per link, matching the uninterrupted run.
	if !strings.Contains(out, "windows: settled=2 violations=0") {
		t.Errorf("window accounting diverged across the participant crash:\n%s", out)
	}
	if err := run(&bytes.Buffer{}, []string{"-killtarget", "hub"}); err == nil {
		t.Error("unknown -killtarget accepted")
	}
}

func TestRunMuxedRoutesSimulation(t *testing.T) {
	// -routes widens the supervisor fan-out beyond one-per-participant;
	// all routes are multiplexed over one physical supervisor link, so the
	// report gains the mux summary and per-route relay table.
	out := runGridsim(t,
		"-scheme", "ni-cbs", "-chainiters", "1", "-tasks", "8",
		"-tasksize", "256", "-honest", "2", "-semihonest", "1", "-m", "8",
		"-pipeline", "2", "-broker", "-routes", "6")
	if !strings.Contains(out, "tasks=8") {
		t.Errorf("muxed fan-out run lost tasks:\n%s", out)
	}
	if !strings.Contains(out, "broker mux: links=1 routes=6") {
		t.Errorf("report missing mux summary line:\n%s", out)
	}
	if !strings.Contains(out, "to-worker") || !strings.Contains(out, "to-supervisor") {
		t.Errorf("report missing per-route relay table:\n%s", out)
	}
	for _, name := range []string{"honest-0", "honest-1", "semihonest-0"} {
		if !strings.Contains(out, name) {
			t.Errorf("per-route table missing %s:\n%s", name, out)
		}
	}
	if err := run(&bytes.Buffer{}, []string{"-routes", "4"}); err == nil {
		t.Error("-routes without -broker accepted")
	}
	if err := run(&bytes.Buffer{}, []string{
		"-routes", "1", "-broker", "-pipeline", "2"}); err == nil {
		t.Error("-routes below the participant pool accepted")
	}
}
