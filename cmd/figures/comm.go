package main

import (
	"fmt"
	"io"

	"uncheatgrid/internal/analysis"
	"uncheatgrid/internal/grid"
)

// runComm reproduces the communication-cost comparison of Sections 1 and 3:
// the per-participant upload under the naive full-upload scheme is O(n),
// under CBS O(m log n). Measured bytes come from live protocol runs over
// the byte-accounted transport; the 2^40 and 2^64 rows are the analytic
// model (the paper's "16 million terabytes" headline).
func runComm(w io.Writer) error {
	const m = 50 // the paper's example sample count
	fmt.Fprintf(w, "per-participant upload bytes, m = %d samples, 8-byte results\n\n", m)
	fmt.Fprintf(w, "%10s %16s %16s %16s %12s\n", "n", "naive (meas.)", "cbs (meas.)", "ni-cbs (meas.)", "naive/cbs")

	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		naive, err := measureUpload(grid.SchemeSpec{Kind: grid.SchemeNaive, M: m}, n)
		if err != nil {
			return err
		}
		cbs, err := measureUpload(grid.SchemeSpec{Kind: grid.SchemeCBS, M: m}, n)
		if err != nil {
			return err
		}
		nicbs, err := measureUpload(grid.SchemeSpec{Kind: grid.SchemeNICBS, M: m, ChainIters: 1}, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10d %16d %16d %16d %11.1fx\n", n, naive, cbs, nicbs, float64(naive)/float64(cbs))
	}

	fmt.Fprintln(w, "\nanalytic extrapolation (32-byte digests):")
	fmt.Fprintf(w, "%10s %20s %16s\n", "n", "naive bytes", "cbs bytes")
	for _, logN := range []int{40, 62} {
		n := int64(1) << logN
		naive := analysis.NaiveCommunicationBytes(n, 8)
		cbs := analysis.CBSCommunicationBytes(n, 8, 32, m)
		fmt.Fprintf(w, "%9s2^%-2d %20d %16d\n", "", logN, naive, cbs)
	}
	fmt.Fprintln(w, "\npaper headline (§3): a 2^64-input task at 1 byte/result uploads 2^64 B")
	fmt.Fprintln(w, "≈ 16.8 million terabytes under any full-upload scheme; CBS with m=50")
	fmt.Fprintln(w, "uploads ~100KB. The measured crossover above sits near n ≈ 2^11.")
	return nil
}

// measureUpload runs one honest task under the spec and returns the bytes
// the supervisor received (the participant's upload).
func measureUpload(spec grid.SchemeSpec, n int) (int64, error) {
	report, err := grid.RunSim(grid.SimConfig{
		Spec:     spec,
		Workload: "synthetic",
		Seed:     9,
		TaskSize: n,
		Tasks:    1,
		Honest:   1,
	})
	if err != nil {
		return 0, err
	}
	return report.SupervisorBytesRecv, nil
}
