package main

import (
	"fmt"
	"io"

	"uncheatgrid/internal/analysis"
	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/workload"
)

// runEq5 reproduces the Section 4.2 analysis of the re-rolling attack on
// non-interactive CBS: measured attack attempts against the expected 1/r^m,
// and the Eq. 5 sizing of the iterated hash g = H^k that prices the attack
// out of profitability.
func runEq5(w io.Writer) error {
	fmt.Fprintln(w, "re-rolling attack: rebuild the tree with fresh fake leaves until all")
	fmt.Fprintln(w, "self-derived samples land in D' (measured over 30 seeds)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s %4s %16s %16s\n", "r", "m", "expected 1/r^m", "measured mean")

	chain, err := hashchain.New(1)
	if err != nil {
		return err
	}
	type point struct {
		r float64
		m int
	}
	for _, p := range []point{{0.5, 2}, {0.5, 4}, {0.5, 6}, {0.75, 8}, {0.9, 16}} {
		expected, err := analysis.ExpectedRerollAttempts(p.r, p.m)
		if err != nil {
			return err
		}
		const seeds = 30
		total := 0
		for seed := uint64(0); seed < seeds; seed++ {
			result, err := cheat.Reroll(cheat.RerollConfig{
				F:           workload.NewSynthetic(seed, 1, 64),
				N:           64,
				Ratio:       p.r,
				M:           p.m,
				Chain:       chain,
				MaxAttempts: 1 << 22,
				Seed:        seed,
			})
			if err != nil {
				return err
			}
			total += result.Attempts
		}
		fmt.Fprintf(w, "%6.2f %4d %16.1f %16.1f\n", p.r, p.m, expected, float64(total)/seeds)
	}

	fmt.Fprintln(w, "\nEq. 5 defense: choose k in g = H^k so that (1/r^m)·m·k ≥ n·C_f")
	fmt.Fprintf(w, "%10s %8s %6s %4s %14s %18s\n", "n", "C_f", "r", "m", "required k", "honest overhead")
	type scenario struct {
		n     float64
		fCost float64
		r     float64
		m     int
	}
	for _, s := range []scenario{
		{1 << 20, 8, 0.9, 16},
		{1 << 24, 16, 0.95, 32},
		{1 << 30, 64, 0.99, 64},
	} {
		k, err := analysis.RequiredChainIterations(s.n, s.fCost, s.r, s.m)
		if err != nil {
			return err
		}
		overhead, err := analysis.HonestChainOverhead(s.n, s.fCost, s.r, s.m)
		if err != nil {
			return err
		}
		cost, err := analysis.RerollAttackCost(s.n, s.fCost, s.r, s.m, int(k))
		if err != nil {
			return err
		}
		status := "uneconomical ✓"
		if !cost.Uneconomical() {
			status = "STILL PROFITABLE"
		}
		fmt.Fprintf(w, "%10.0f %8.0f %6.2f %4d %14.0f %17.5f%% (%s)\n",
			s.n, s.fCost, s.r, s.m, k, overhead*100, status)
	}
	fmt.Fprintln(w, "\nper §4.2, the honest participant's extra cost ratio is ≈ r^m — negligible.")
	return nil
}
