package main

import (
	"fmt"
	"io"

	"uncheatgrid/internal/grid"
)

// runSchemes compares every verification scheme on the same mixed
// population: 4 honest workers and 4 semi-honest cheaters (r = 0.5), 16
// tasks of 2048 inputs. The columns show who wins on detection and on
// communication — the paper's overall claim is that CBS matches naive
// sampling's detection at a logarithmic fraction of the traffic, without
// the one-way-f restriction of ringers or the wasted cycles of
// double-checking.
func runSchemes(w io.Writer) error {
	fmt.Fprintf(w, "%14s %10s %10s %14s %14s %12s %10s\n",
		"scheme", "caught", "accused", "supervisor B", "worker evals", "generic f?", "rounds")

	specs := []grid.SchemeSpec{
		{Kind: grid.SchemeDoubleCheck, M: 1},
		{Kind: grid.SchemeNaive, M: 33},
		{Kind: grid.SchemeRinger, M: 8},
		{Kind: grid.SchemeCBS, M: 33},
		{Kind: grid.SchemeNICBS, M: 33, ChainIters: 4},
	}
	for _, spec := range specs {
		cfg := grid.SimConfig{
			Spec:         spec,
			Workload:     "synthetic",
			Seed:         1234,
			TaskSize:     2048,
			Tasks:        16,
			Honest:       4,
			SemiHonest:   4,
			HonestyRatio: 0.5,
		}
		genericF := "yes"
		if spec.Kind == grid.SchemeRinger {
			cfg.Workload = "password" // ringers require one-way f
			genericF = "no (one-way)"
		}
		if spec.Kind == grid.SchemeDoubleCheck {
			cfg.Replicas = 3
		}
		report, err := grid.RunSim(cfg)
		if err != nil {
			return err
		}
		var workerEvals int64
		for _, p := range report.Participants {
			workerEvals += p.FEvals
		}
		rounds := "2" // assignment + upload
		switch spec.Kind {
		case grid.SchemeCBS:
			rounds = "4" // assign, commit, challenge, proofs
		case grid.SchemeNICBS:
			rounds = "2" // assign, commit+proofs (no challenge)
		}
		fmt.Fprintf(w, "%14s %6d/%-3d %10d %14d %14d %12s %10s\n",
			report.Scheme,
			report.CheatersDetected, report.CheatersTotal,
			report.HonestAccused,
			report.SupervisorBytesSent+report.SupervisorBytesRecv,
			workerEvals,
			genericF,
			rounds)
	}
	fmt.Fprintln(w, "\nexpected shape: all schemes catch r=0.5 cheaters; CBS/NI-CBS traffic is")
	fmt.Fprintln(w, "orders below naive/double-check; double-check burns ~replica× worker cycles")
	fmt.Fprintln(w, "and falsely accuses honest workers grouped with two disagreeing cheaters")
	fmt.Fprintln(w, "(no index-wise majority); ringer works only for one-way f (password search).")
	return nil
}
