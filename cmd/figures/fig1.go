package main

import (
	"fmt"
	"io"

	"uncheatgrid/internal/core"
	"uncheatgrid/internal/merkle"
	"uncheatgrid/internal/workload"
)

// runFig1 reproduces Figure 1: a 16-leaf Merkle tree over f(x1..x16), the
// commitment Φ(R), and the verification of sample x3 using the sibling
// values Φ(L4), Φ(A), Φ(D), Φ(F).
func runFig1(w io.Writer) error {
	f := workload.NewPassword(2004, 16)
	const n = 16

	prover, err := core.NewProver(n, func(i uint64) []byte { return f.Eval(i) })
	if err != nil {
		return err
	}
	commitment := prover.Commitment()
	fmt.Fprintf(w, "participant builds a %d-leaf Merkle tree with Φ(Li) = f(xi)\n", n)
	fmt.Fprintf(w, "commitment Φ(R) = %x\n", commitment.Root)

	// Sample x3 is leaf index 2; its path carries H = 4 sibling values,
	// the nodes labeled L4, A, D, F in the paper's figure.
	resp, err := prover.Respond([]uint64{2})
	if err != nil {
		return err
	}
	proof := resp.Proofs[0]
	fmt.Fprintf(w, "sample x3 (leaf index 2): participant sends f(x3) = %x…\n", proof.Value[:8])
	labels := []string{"Φ(L4)", "Φ(A) ", "Φ(D) ", "Φ(F) "}
	for i, sib := range proof.Siblings {
		fmt.Fprintf(w, "  sibling %d %s = %x…\n", i+1, labels[i], sib[:8])
	}

	verifier, err := core.NewVerifier(commitment)
	if err != nil {
		return err
	}
	err = verifier.Verify(core.Challenge{Indices: []uint64{2}}, resp,
		core.RecomputeCheck(func(i uint64) []byte { return f.Eval(i) }))
	if err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Fprintln(w, "supervisor reconstructs Φ(R') from f(x3) and the siblings: Φ(R') = Φ(R) ✓")

	// The flip side: splicing a different (even correct-looking) value into
	// the proof fails to reconstruct the committed root.
	forged := *proof
	forged.Value = f.Eval(9)
	err = verifier.Verify(core.Challenge{Indices: []uint64{2}},
		&core.Response{Proofs: []*merkle.Proof{&forged}}, core.AcceptAnyOutput)
	if err == nil {
		return fmt.Errorf("forged leaf value was accepted")
	}
	fmt.Fprintf(w, "forged f(x3) rejected: %v\n", err)
	return nil
}
