package main

import (
	"fmt"
	"io"

	"uncheatgrid/internal/analysis"
)

// runEq2 cross-checks Theorem 3 (Eq. 2): the measured survival rate of a
// semi-honest cheater over repeated live CBS exchanges against the analytic
// (r + (1-r)q)^m, across a grid of (r, q, m).
func runEq2(w io.Writer) error {
	const rounds = 400
	fmt.Fprintf(w, "survival over %d protocol rounds vs Eq. 2\n\n", rounds)
	fmt.Fprintf(w, "%6s %6s %4s %12s %12s\n", "r", "q", "m", "analytic", "measured")

	type point struct {
		r    float64
		bits uint
		q    float64
		m    int
	}
	points := []point{
		{r: 0.3, bits: 64, q: 0, m: 2},
		{r: 0.5, bits: 64, q: 0, m: 3},
		{r: 0.5, bits: 64, q: 0, m: 6},
		{r: 0.7, bits: 64, q: 0, m: 4},
		{r: 0.5, bits: 1, q: 0.5, m: 4},
		{r: 0.3, bits: 1, q: 0.5, m: 6},
		{r: 0.9, bits: 64, q: 0, m: 8},
	}
	for _, p := range points {
		want, err := analysis.CheatSuccessProb(p.r, p.q, p.m)
		if err != nil {
			return err
		}
		got, err := measuredSurvivalWithQ(p.r, p.bits, p.m, rounds, 256)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6.2f %6.2f %4d %12.5f %12.5f\n", p.r, p.q, p.m, want, got)
	}
	return nil
}
