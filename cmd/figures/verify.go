package main

import (
	"fmt"
	"io"
	"time"

	"uncheatgrid/internal/workload"
)

// runVerify reproduces the Step 4 remark of Section 3.1: "there are many
// computations whose verification is much less expensive than the
// computations themselves. For example, factoring large numbers is an
// expensive computation, but verifying the factoring results is trivial."
// We time the factoring workload's Eval (trial division) against its
// VerifyOutput (two multiplications plus 16-bit primality checks).
func runVerify(w io.Writer) error {
	f := workload.NewFactor(2004)
	verifier, ok := workload.AsOutputVerifier(f)
	if !ok {
		return fmt.Errorf("factor workload lost its verifier")
	}

	const inputs = 512
	outputs := make([][]byte, inputs)

	evalStart := time.Now()
	for x := uint64(0); x < inputs; x++ {
		outputs[x] = f.Eval(x)
	}
	evalTime := time.Since(evalStart)

	verifyStart := time.Now()
	for x := uint64(0); x < inputs; x++ {
		if !verifier.VerifyOutput(x, outputs[x]) {
			return fmt.Errorf("verification rejected Eval's own output at %d", x)
		}
	}
	verifyTime := time.Since(verifyStart)

	fmt.Fprintf(w, "factor workload over %d semiprimes (16-bit prime factors):\n", inputs)
	fmt.Fprintf(w, "  compute (trial division): %12v  (%8.2f µs/input)\n",
		evalTime, float64(evalTime.Microseconds())/inputs)
	fmt.Fprintf(w, "  verify  (multiply+check): %12v  (%8.2f µs/input)\n",
		verifyTime, float64(verifyTime.Microseconds())/inputs)
	ratio := float64(evalTime) / float64(verifyTime)
	fmt.Fprintf(w, "  compute/verify ratio: %.0fx\n", ratio)
	fmt.Fprintln(w, "\nthe supervisor's per-sample check (Step 4 case 1) need not recompute f.")
	return nil
}
