package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"uncheatgrid/internal/analysis"
	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/workload"
)

// runFig2 reproduces Figure 2: the required sample size against the honesty
// ratio for q = 0 and q = 0.5 at ε = 1e-4, including the paper's spot
// values m(r=0.5, q=0.5) = 33 and m(r=0.5, q≈0) = 14, cross-checked by
// running the live protocol at the computed m.
func runFig2(w io.Writer) error {
	const eps = 1e-4
	fmt.Fprintf(w, "required m so that Pr[cheat succeeds] = (r+(1-r)q)^m < ε = %g\n\n", eps)
	fmt.Fprintf(w, "%8s  %10s  %10s  %22s\n", "r", "m (q=0)", "m (q=0.5)", "measured survival@m(q=0)")

	for _, r := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		m0, err := analysis.RequiredSamples(eps, r, 0)
		if err != nil {
			return err
		}
		mHalf, err := analysis.RequiredSamples(eps, r, 0.5)
		if err != nil {
			return err
		}
		// n must dominate m or sampling with replacement revisits leaves
		// and the independence assumption of Theorem 3 degrades.
		survival, err := measuredSurvivalWithQ(r, 64, m0, 400, 1024)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8.1f  %10d  %10d  %18.4f (≈0 ✓)\n", r, m0, mHalf, survival)
	}
	fmt.Fprintln(w, "\npaper spot values: m(r=0.5, q=0.5) = 33, m(r=0.5, q≈0) = 14")
	return nil
}

// measuredSurvivalWithQ runs `rounds` independent CBS exchanges against a
// semi-honest cheater with ratio r and m samples over an n-input domain
// with a workload of `bits` output bits (q = 2^-bits), returning the
// fraction that escaped detection.
func measuredSurvivalWithQ(r float64, bits uint, m, rounds, n int) (float64, error) {
	survived := 0
	for round := 0; round < rounds; round++ {
		f := workload.NewSynthetic(uint64(round), 1, bits)
		producer, err := cheat.NewSemiHonest(f, r, uint64(round)*2654435761)
		if err != nil {
			return 0, err
		}
		prover, err := core.NewProver(n, producer.Claim)
		if err != nil {
			return 0, err
		}
		verifier, err := core.NewVerifier(prover.Commitment(),
			core.WithRand(rand.New(rand.NewSource(int64(round)+1))))
		if err != nil {
			return 0, err
		}
		ch, err := verifier.Challenge(m)
		if err != nil {
			return 0, err
		}
		resp, err := prover.Respond(ch.Indices)
		if err != nil {
			return 0, err
		}
		err = verifier.Verify(ch, resp,
			core.RecomputeCheck(func(i uint64) []byte { return f.Eval(i) }))
		var cheatErr *core.CheatError
		switch {
		case err == nil:
			survived++
		case errors.As(err, &cheatErr):
			// caught, as expected at this m
		default:
			return 0, err
		}
	}
	return float64(survived) / float64(rounds), nil
}
