// Command figures regenerates every figure and quantitative claim of
// "Uncheatable Grid Computing" (Du et al., ICDCS 2004) from the library in
// this repository. Each experiment prints an aligned text table; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	figures            # run every experiment
//	figures -exp fig2  # run one experiment
//	figures -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// experiment is one reproducible artifact of the paper.
type experiment struct {
	id    string
	title string
	run   func(w io.Writer) error
}

// experiments lists every artifact in presentation order.
func experiments() []experiment {
	return []experiment{
		{id: "fig1", title: "Figure 1: Merkle tree commitment and verification path", run: runFig1},
		{id: "fig2", title: "Figure 2: required sample size vs honesty ratio (ε=1e-4)", run: runFig2},
		{id: "fig3", title: "Figure 3 / §3.3: storage vs recomputation tradeoff", run: runFig3},
		{id: "eq2", title: "Eq. 2: cheat-success probability, analytic vs simulated", run: runEq2},
		{id: "comm", title: "§1/§3: communication cost per participant", run: runComm},
		{id: "eq5", title: "§4.2 / Eq. 5: NI-CBS re-rolling attack economics", run: runEq5},
		{id: "schemes", title: "§1.1/§5: scheme comparison on a mixed population", run: runSchemes},
		{id: "verify", title: "§3.1 Step 4: verification cheaper than recomputation", run: runVerify},
	}
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	expID := fs.String("exp", "", "experiment id to run (default: all)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := experiments()
	if *list {
		ids := make([]string, 0, len(all))
		for _, e := range all {
			ids = append(ids, e.id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintln(w, id)
		}
		return nil
	}

	for _, e := range all {
		if *expID != "" && e.id != *expID {
			continue
		}
		fmt.Fprintf(w, "==== %s — %s ====\n", e.id, e.title)
		if err := e.run(w); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintln(w)
	}
	if *expID != "" && !hasExperiment(all, *expID) {
		return fmt.Errorf("unknown experiment %q (use -list)", *expID)
	}
	return nil
}

func hasExperiment(all []experiment, id string) bool {
	for _, e := range all {
		if e.id == id {
			return true
		}
	}
	return false
}
