package main

import (
	"fmt"
	"io"

	"uncheatgrid/internal/analysis"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/workload"
)

// runFig3 reproduces the Section 3.3 storage/computation tradeoff sketched
// in Figure 3: the participant stores the tree only down to level H-ℓ
// (S = 2^(H-ℓ+1) slots) and pays 2^ℓ recomputations of f per audited
// sample, for a relative computation overhead rco = 2m/S that is
// independent of |D|.
func runFig3(w io.Writer) error {
	const m = 16
	fmt.Fprintf(w, "m = %d samples per audit; rco = m·2^ℓ/|D| = 2m/S\n\n", m)
	fmt.Fprintf(w, "%8s %4s %12s %14s %14s %14s\n",
		"|D|", "ℓ", "stored S", "f-evals/audit", "measured rco", "analytic rco")

	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		height := 0
		for c := 1; c < n; c *= 2 {
			height++
		}
		for _, ell := range []int{0, 2, 4, 6, 8} {
			if ell > height {
				continue
			}
			f := workload.NewSynthetic(uint64(n), 1, 64)
			prover, err := core.NewProver(n,
				func(i uint64) []byte { return f.Eval(i) },
				core.WithSubtreeHeight(ell))
			if err != nil {
				return err
			}
			// One audit of m evenly spread samples.
			indices := make([]uint64, m)
			for k := range indices {
				indices[k] = uint64(k * n / m)
			}
			if _, err := prover.Respond(indices); err != nil {
				return err
			}
			measured := float64(prover.RebuiltLeaves()) / float64(n)
			wantRCO, err := analysis.RCO(m, prover.StoredNodes())
			if err != nil {
				return err
			}
			if ell == 0 {
				wantRCO = 0 // full tree stored: nothing rebuilt
			}
			fmt.Fprintf(w, "%8d %4d %12d %14d %14.6f %14.6f\n",
				n, ell, prover.StoredNodes(), prover.RebuiltLeaves(), measured, wantRCO)
		}
	}
	fmt.Fprintln(w, "\npaper spot value: m=64, S=2^32 slots → rco = 2^-25 (storage-independent of |D|)")
	rco, err := analysis.RCO(64, 1<<32)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "analytic check: RCO(64, 2^32) = %g = 2^-25 ✓\n", rco)
	return nil
}
