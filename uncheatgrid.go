// Package uncheatgrid is a Go implementation of "Uncheatable Grid
// Computing" (Du, Jia, Mangal, Murugesan; ICDCS 2004): the Commitment-Based
// Sampling (CBS) scheme that lets a grid-computing supervisor verify — with
// O(m log n) communication — that a participant really evaluated f on all n
// assigned inputs, plus the non-interactive variant, the storage-bounded
// prover, the baselines the paper compares against, and a full grid
// simulation harness.
//
// # Quick start
//
// The participant commits to its results with a Merkle tree, the supervisor
// challenges m random samples, and the participant proves each sampled
// result was in the committed tree:
//
//	f := uncheatgrid.NewSyntheticWorkload(1, 4, 64)
//	prover, _ := uncheatgrid.NewProver(1024, func(i uint64) []byte { return f.Eval(i) })
//	verifier, _ := uncheatgrid.NewVerifier(prover.Commitment())
//	challenge, _ := verifier.Challenge(33) // m per Eq. 3 at ε=1e-4, r=0.5, q=0.5
//	response, _ := prover.Respond(challenge.Indices)
//	err := verifier.Verify(challenge, response,
//	    uncheatgrid.RecomputeCheck(func(i uint64) []byte { return f.Eval(i) }))
//	// err == nil ⇔ the participant is (with probability ≥ 1-1e-4) honest.
//
// Higher-level entry points: RunSim simulates whole populations of honest
// and cheating participants under any scheme; the cmd/figures binary
// regenerates every figure and table of the paper.
package uncheatgrid

import (
	"uncheatgrid/internal/analysis"
	"uncheatgrid/internal/baseline"
	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/grid"
	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
	"uncheatgrid/internal/transport"
	"uncheatgrid/internal/workload"
)

// ---- CBS protocol (the paper's contribution, Sections 3-4) ----

type (
	// Prover is the participant side of (NI-)CBS: it commits to results
	// and answers sample challenges.
	Prover = core.Prover
	// Verifier is the supervisor side of (NI-)CBS.
	Verifier = core.Verifier
	// Commitment is the Step 1 message (Merkle root + domain size).
	Commitment = core.Commitment
	// Challenge is the Step 2 message (sample indices).
	Challenge = core.Challenge
	// Response is the Step 3 message (per-sample audit proofs).
	Response = core.Response
	// CheckFunc validates a claimed f(x) on the supervisor side.
	CheckFunc = core.CheckFunc
	// CheatError reports the convicting sample of a failed verification.
	CheatError = core.CheatError
	// ProtocolOption customizes provers and verifiers.
	ProtocolOption = core.Option
)

// Protocol constructors and helpers re-exported from the core scheme.
var (
	// NewProver builds the participant's commitment over n claimed results.
	NewProver = core.NewProver
	// NewVerifier accepts a commitment and audits responses against it.
	NewVerifier = core.NewVerifier
	// RecomputeCheck builds a CheckFunc that recomputes f and compares.
	RecomputeCheck = core.RecomputeCheck
	// AcceptAnyOutput skips the output check (commitment audit only).
	AcceptAnyOutput CheckFunc = core.AcceptAnyOutput
	// WithSubtreeHeight selects the Section 3.3 storage-bounded prover.
	WithSubtreeHeight = core.WithSubtreeHeight
	// WithRand pins the verifier's challenge randomness.
	WithRand = core.WithRand
	// WithTreeOptions forwards Merkle-layer options (hash choice).
	WithTreeOptions = core.WithTreeOptions
)

// Sentinel errors of the protocol layer.
var (
	// ErrWrongOutput marks a sample whose claimed f(x) is incorrect.
	ErrWrongOutput = core.ErrWrongOutput
	// ErrCommitmentMismatch marks a proof inconsistent with the committed
	// root — the Theorem 2 conviction.
	ErrCommitmentMismatch = core.ErrCommitmentMismatch
)

// ---- Merkle tree substrate (Section 3, Eq. 1) ----

type (
	// MerkleTree is the materialized commitment tree.
	MerkleTree = merkle.Tree
	// MerkleProof is one leaf's audit path.
	MerkleProof = merkle.Proof
	// PartialMerkleTree is the Section 3.3 storage-bounded tree.
	PartialMerkleTree = merkle.PartialTree
	// MerkleStreamBuilder computes roots in O(log n) memory.
	MerkleStreamBuilder = merkle.StreamBuilder
	// MerkleOption customizes tree construction (hash choice, parallelism).
	MerkleOption = merkle.Option
)

// Merkle constructors re-exported for direct use.
var (
	// BuildMerkleTree materializes a tree over leaf values.
	BuildMerkleTree = merkle.Build
	// BuildMerkleTreeFunc materializes a tree over generated leaf values.
	BuildMerkleTreeFunc = merkle.BuildFunc
	// VerifyMerkleProof checks an audit path against a root.
	VerifyMerkleProof = merkle.Verify
	// NewPartialMerkleTree builds the storage-bounded tree.
	NewPartialMerkleTree = merkle.NewPartial
	// NewMerkleStreamBuilder builds roots over huge domains.
	NewMerkleStreamBuilder = merkle.NewStreamBuilder
	// WithMerkleHasher selects the tree's one-way hash function.
	WithMerkleHasher = merkle.WithHasher
	// WithMerkleParallelism shards tree construction across a worker pool;
	// roots are bit-identical to the sequential build. The leaf function
	// is then called from multiple goroutines, so it must be safe for
	// concurrent use. It applies to BuildMerkleTree/BuildMerkleTreeFunc
	// and, as a sharded streaming mode, to NewMerkleStreamBuilder; the
	// storage-bounded (WithSubtreeHeight) prover builds sequentially and
	// ignores it.
	WithMerkleParallelism = merkle.WithParallelism
)

// ---- Non-interactive sample derivation (Section 4, Eq. 4-5) ----

type (
	// HashChain is the iterated one-way function g of NI-CBS.
	HashChain = hashchain.Chain
)

// NewHashChain constructs g = hash^iterations; both sides of the NI-CBS
// exchange must agree on the iteration count.
var NewHashChain = hashchain.New

// ---- Analysis (Eq. 2, Eq. 3, Section 3.3, Eq. 5) ----

var (
	// CheatSuccessProb is Eq. 2: (r + (1-r)q)^m.
	CheatSuccessProb = analysis.CheatSuccessProb
	// DetectionProb is 1 - CheatSuccessProb.
	DetectionProb = analysis.DetectionProb
	// RequiredSamples is Eq. 3: the minimum m for a target ε (Fig. 2).
	RequiredSamples = analysis.RequiredSamples
	// RCO is the Section 3.3 relative computation overhead 2m/S.
	RCO = analysis.RCO
	// ExpectedRerollAttempts is the Section 4.2 attack effort 1/r^m.
	ExpectedRerollAttempts = analysis.ExpectedRerollAttempts
	// RequiredChainIterations sizes g to satisfy Eq. 5.
	RequiredChainIterations = analysis.RequiredChainIterations
	// RerollAttackCost evaluates both sides of Eq. 5.
	RerollAttackCost = analysis.RerollAttackCost
)

// ---- Workloads (the computations f and screeners S, Section 2.1) ----

type (
	// Workload is the computation f assigned to participants.
	Workload = workload.Function
	// Screener is the report filter S of Section 2.1.
	Screener = workload.Screener
	// WorkloadCounter counts evaluations of f.
	WorkloadCounter = workload.Counter
)

// Workload constructors and the registry.
var (
	// NewWorkload instantiates a registered workload by name.
	NewWorkload = workload.New
	// WorkloadNames lists the registered workloads.
	WorkloadNames = workload.Names
	// CountWorkload wraps a workload with an evaluation counter.
	CountWorkload = workload.Count
	// NewPasswordWorkload is the brute-force keyspace search (Section 3).
	NewPasswordWorkload = workload.NewPassword
	// NewDrugScreenWorkload is the molecule-screening simulation.
	NewDrugScreenWorkload = workload.NewDrugScreen
	// NewSignalWorkload is the SETI-style spectral search.
	NewSignalWorkload = workload.NewSignal
	// NewMersenneWorkload is the GIMPS-style Lucas-Lehmer test (q = 0.5).
	NewMersenneWorkload = workload.NewMersenne
	// NewFactorWorkload is the cheaply-verifiable factoring workload.
	NewFactorWorkload = workload.NewFactor
	// NewSyntheticWorkload has tunable cost and output width (q dial).
	NewSyntheticWorkload = workload.NewSynthetic
)

// ---- Cheating models (Section 2.2) ----

type (
	// Producer is a participant behaviour (honest or cheating).
	Producer = cheat.Producer
	// RerollConfig parameterizes the Section 4.2 NI-CBS attack.
	RerollConfig = cheat.RerollConfig
	// RerollResult reports a mounted re-rolling attack.
	RerollResult = cheat.RerollResult
)

// Behaviour constructors and the NI-CBS attack.
var (
	// NewHonest is the r = 1 behaviour.
	NewHonest = cheat.NewHonest
	// NewSemiHonest cheats with honesty ratio r.
	NewSemiHonest = cheat.NewSemiHonest
	// NewMalicious corrupts screener reports.
	NewMalicious = cheat.NewMalicious
	// Reroll mounts the Section 4.2 re-rolling attack.
	Reroll = cheat.Reroll
)

// ---- Baselines (Section 1, 1.1) ----

type (
	// NaiveSampling re-checks samples of a full upload.
	NaiveSampling = baseline.NaiveSampling
	// DoubleCheck compares redundant replicas.
	DoubleCheck = baseline.DoubleCheck
	// RingerSet is the Golle-Mironov supervisor state.
	RingerSet = baseline.RingerSet
)

// Baseline constructors.
var (
	// NewNaiveSampling builds the naive sampler.
	NewNaiveSampling = baseline.NewNaiveSampling
	// NewDoubleCheck builds the redundancy comparator.
	NewDoubleCheck = baseline.NewDoubleCheck
	// PlantRingers precomputes ringer images over a domain.
	PlantRingers = baseline.PlantRingers
)

// ---- Grid simulation (Section 2.1, Section 4 GRACE) ----

type (
	// Supervisor organizes tasks and verification.
	Supervisor = grid.Supervisor
	// SupervisorConfig configures a supervisor.
	SupervisorConfig = grid.SupervisorConfig
	// SupervisorPool verifies many participants concurrently with bounded
	// workers; outcomes are reproducible for equal seeds regardless of
	// scheduling.
	SupervisorPool = grid.SupervisorPool
	// Assignment pairs a task with a participant connection for pooled runs.
	Assignment = grid.Assignment
	// Session is a pipelined multi-task exchange: up to `window` tasks in
	// flight on one connection, messages tagged by task ID and coalesced
	// into batched frames. Open one with Supervisor.OpenSession.
	Session = grid.Session
	// TaskStream is the handle of a streaming pooled run
	// (SupervisorPool.RunTasksStream): outcomes arrive as tasks complete.
	TaskStream = grid.TaskStream
	// StreamedOutcome pairs a streamed outcome with its connection.
	StreamedOutcome = grid.StreamedOutcome
	// StreamOption configures streaming pooled runs.
	StreamOption = grid.StreamOption
	// TaskSource feeds a streaming run one task at a time, consulted lazily
	// under bounded look-ahead — a generator-backed source can describe runs
	// far larger than memory (SupervisorPool.RunTaskSource).
	TaskSource = grid.TaskSource
	// WindowLedger verifies one participant link's rolling hash-chained
	// window commitments during a streaming run.
	WindowLedger = grid.WindowLedger
	// WindowStats summarizes a window ledger: settled windows, violations,
	// and tasks still pending in the open window.
	WindowStats = grid.WindowStats
	// SessionOption configures pipelined sessions.
	SessionOption = grid.SessionOption
	// Participant is a grid worker.
	Participant = grid.Participant
	// ParticipantOption customizes a participant.
	ParticipantOption = grid.ParticipantOption
	// ProducerFactory builds a participant behaviour per task.
	ProducerFactory = grid.ProducerFactory
	// BrokerHub is the GRACE-style broker: an identity-routed relay that
	// multiplexes supervisor↔worker routes, re-batches session frames at
	// the relay hop, and re-binds redialed supervisor connections to the
	// same registered worker so resume works through the relay.
	BrokerHub = grid.BrokerHub
	// BrokerOption configures NewBrokerHub.
	BrokerOption = grid.BrokerOption
	// MuxOption configures OpenMux.
	MuxOption = grid.MuxOption
	// LinkOption configures both endpoints of a multiplexed hub link (it is
	// accepted by NewBrokerHub and OpenMux).
	LinkOption = grid.LinkOption
	// BrokerRouteStats is one worker's cumulative relay accounting.
	BrokerRouteStats = grid.RouteStats
	// BrokerRouteDirectionStats covers one relay direction's traffic.
	BrokerRouteDirectionStats = grid.RouteDirectionStats
	// SupervisorMux multiplexes many supervisor↔worker routes over one
	// physical hub link with per-route credit flow control.
	SupervisorMux = grid.SupervisorMux
	// Task is one assigned domain window.
	Task = grid.Task
	// SchemeKind enumerates verification schemes.
	SchemeKind = grid.SchemeKind
	// SchemeSpec parameterizes a scheme.
	SchemeSpec = grid.SchemeSpec
	// SimConfig describes a population simulation.
	SimConfig = grid.SimConfig
	// SimReport aggregates a simulation run.
	SimReport = grid.SimReport
	// TaskVerdict is the supervisor's authoritative per-task ruling in a
	// simulation report.
	TaskVerdict = grid.TaskVerdict
	// TaskOutcome summarizes one verified task.
	TaskOutcome = grid.TaskOutcome
)

// The verification schemes.
const (
	SchemeCBS         = grid.SchemeCBS
	SchemeNICBS       = grid.SchemeNICBS
	SchemeNaive       = grid.SchemeNaive
	SchemeDoubleCheck = grid.SchemeDoubleCheck
	SchemeRinger      = grid.SchemeRinger
)

// Grid constructors and helpers.
var (
	// NewSupervisor creates the task organizer.
	NewSupervisor = grid.NewSupervisor
	// NewSupervisorPool creates the concurrent verification engine.
	NewSupervisorPool = grid.NewSupervisorPool
	// NewParticipant creates a worker.
	NewParticipant = grid.NewParticipant
	// NewBrokerHub creates the GRACE relay hub.
	NewBrokerHub = grid.NewBrokerHub
	// HelloWorker registers a participant identity on a hub link.
	HelloWorker = grid.HelloWorker
	// HelloSupervisor asks a hub to route a link to a registered worker.
	HelloSupervisor = grid.HelloSupervisor
	// OpenMux turns one hub link into a multiplexed carrier for many
	// routes (see SupervisorMux.OpenRoute).
	OpenMux = grid.OpenMux
	// ErrMuxClosed reports use of a closed supervisor mux.
	ErrMuxClosed = grid.ErrMuxClosed
	// WithRelayBatching toggles relay-hop batching on a hub (default on).
	WithRelayBatching = grid.WithRelayBatching
	// WithBrokerBindTimeout bounds how long a supervisor link waits for its
	// worker to register.
	WithBrokerBindTimeout = grid.WithBindTimeout
	// WithRouteCreditWindow sets the per-route credit window of a
	// multiplexed hub link; pass the same value to NewBrokerHub and OpenMux.
	WithRouteCreditWindow = grid.WithRouteCreditWindow
	// RunSim executes a population simulation.
	RunSim = grid.RunSim
	// ParseScheme maps a scheme name to its kind.
	ParseScheme = grid.ParseScheme
	// HonestFactory produces honest workers.
	HonestFactory grid.ProducerFactory = grid.HonestFactory
	// SemiHonestFactory produces lazy cheaters.
	SemiHonestFactory = grid.SemiHonestFactory
	// MaliciousFactory produces report saboteurs.
	MaliciousFactory = grid.MaliciousFactory
	// WithProverParallelism makes a participant hash its commitment tree in
	// parallel; roots and reports stay identical to the sequential build.
	WithProverParallelism = grid.WithProverParallelism
	// WithStreamEligibility gates which connections may claim tasks during
	// a streaming pooled run.
	WithStreamEligibility = grid.WithEligibility
	// WithStreamRedial enables reconnect-and-resume: quarantined
	// connections are replaced and their in-flight tasks resume
	// mid-protocol.
	WithStreamRedial = grid.WithRedial
	// WithStreamMaxReconnects bounds replacement connections per
	// participant.
	WithStreamMaxReconnects = grid.WithMaxReconnects
	// WithStreamRecvTimeout arms the sessions' receive watchdog, turning
	// silently dropped frames into reconnects.
	WithStreamRecvTimeout = grid.WithStreamRecvTimeout
	// WithStreamReplicas makes a double-check RunTasksStream fan every task
	// out to n pairwise-distinct connections whose uploads meet at a
	// comparison rendezvous — the pipelined form of RunReplicated.
	WithStreamReplicas = grid.WithReplicas
	// WithStreamWorkerIdentity names the participant behind each stream
	// connection, so replica groups are placed on distinct workers even
	// when connections are relay routes that could share one participant.
	WithStreamWorkerIdentity = grid.WithWorkerIdentity
	// WithSessionRecvTimeout arms one session's receive watchdog.
	WithSessionRecvTimeout = grid.WithSessionRecvTimeout
	// SliceTaskSource adapts a fixed task slice to the TaskSource interface.
	SliceTaskSource = grid.SliceTaskSource
	// NewWindowLedger builds a supervisor-side ledger for one link's rolling
	// window commitments; pass the ledgers to WithStreamWindowSettle.
	NewWindowLedger = grid.NewWindowLedger
	// RestoreWindowLedger rebuilds a ledger from WindowLedger.Snapshot
	// output, resuming rolling-commitment verification after a supervisor
	// restart without losing hash-chain continuity.
	RestoreWindowLedger = grid.RestoreWindowLedger
	// WithStreamWindowSettle arms rolling window commitments on a streaming
	// run: participants commit each settled window of task digests to a
	// hash chain, and the per-link ledgers verify every commit with sampled
	// membership proofs.
	WithStreamWindowSettle = grid.WithWindowSettle
	// WithStreamHighWater bounds how many tickets a source-driven run
	// materializes ahead of execution (default 2×window×connections).
	WithStreamHighWater = grid.WithHighWater
	// WithStreamPinnedPlacement places source task i on connection i mod n
	// instead of work stealing, making placement deterministic.
	WithStreamPinnedPlacement = grid.WithPinnedPlacement
	// WithStreamSourceBase starts the task source's index walk at base
	// instead of 0, so a restored run consults the same absolute indices —
	// and under pinned placement lands tasks on the same connections — as
	// the unsegmented run it resumes.
	WithStreamSourceBase = grid.WithSourceBase
	// WithStreamDrainCheckpoint ends a source-driven run with a durable
	// checkpoint barrier: after draining, every live participant persists
	// its session state at the given sequence number and acknowledges.
	WithStreamDrainCheckpoint = grid.WithDrainCheckpoint
	// WithParticipantCheckpointDir gives a participant a directory for
	// durable checkpoint files; required for checkpoint barriers and
	// RestoreCheckpoint.
	WithParticipantCheckpointDir = grid.WithCheckpointDir
)

// ErrCheckpointCorrupt reports a checkpoint file that failed structural or
// checksum validation on restore.
var ErrCheckpointCorrupt = grid.ErrCheckpointCorrupt

// ErrConnQuarantined marks a transport fault that left the task's protocol
// state resumable on a replacement connection.
var ErrConnQuarantined = grid.ErrConnQuarantined

// ErrFrameCorrupt marks a frame that failed the transport's per-frame
// CRC-32 — link damage, distinguishable from peer misbehavior in every
// wire mode, dialogue included.
var ErrFrameCorrupt = transport.ErrFrameCorrupt

// MaxFrameBytes bounds a single transport frame; larger uploads travel as
// chunk streams.
const MaxFrameBytes = transport.MaxFrameBytes

// ---- Transport ----

type (
	// Conn is a byte-accounted message connection.
	Conn = transport.Conn
	// FaultPlan injects message loss or corruption for testing.
	FaultPlan = transport.FaultPlan
)

// Transport constructors.
var (
	// Pipe creates an in-memory connection pair.
	Pipe = transport.Pipe
	// WithPipeBuffer sets a pipe's per-direction queue depth.
	WithPipeBuffer = transport.WithBuffer
	// ListenTCP opens a framed TCP listener.
	ListenTCP = transport.Listen
	// DialTCP connects to a framed TCP listener.
	DialTCP = transport.Dial
	// WithFaults wraps a connection with fault injection.
	WithFaults = transport.WithFaults
	// WithLatency wraps a connection with a fixed per-frame send delay — a
	// link-delay model for benchmarking pipelined protocols.
	WithLatency = transport.WithLatency
)
